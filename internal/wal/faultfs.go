package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
)

// FaultFS is a deterministic fault injector: an FS that counts every
// operation the log issues and fails exactly the one (or, persistently,
// every write from the one) a FaultPlan names. A reference run with a
// no-fault plan yields the op count and per-op kinds; torture suites
// then walk index 0..N-1 the way the recovery suites walk every byte
// offset — every I/O point the durable path touches gets to fail once.
//
// ErrInjected marks every injected error (ENOSPC faults additionally
// match syscall.ENOSPC, which the log classifies as ErrDiskFull).
var ErrInjected = errors.New("wal: injected fault")

// OpKind labels one filesystem operation class, as counted by FaultFS.
type OpKind uint8

// The operation kinds FaultFS distinguishes.
const (
	KindOpen OpKind = iota
	KindWrite
	KindSync
	KindClose
	KindStat
	KindFileTruncate // File.Truncate (the batch scrub)
	KindRename
	KindRemove
	KindRead
	KindReadDir
	KindMkdir
	KindTruncate // FS.Truncate (torn-tail repair)
	KindSyncDir
)

func (k OpKind) String() string {
	switch k {
	case KindOpen:
		return "open"
	case KindWrite:
		return "write"
	case KindSync:
		return "sync"
	case KindClose:
		return "close"
	case KindStat:
		return "stat"
	case KindFileTruncate:
		return "ftruncate"
	case KindRename:
		return "rename"
	case KindRemove:
		return "remove"
	case KindRead:
		return "read"
	case KindReadDir:
		return "readdir"
	case KindMkdir:
		return "mkdir"
	case KindTruncate:
		return "truncate"
	case KindSyncDir:
		return "syncdir"
	}
	return "op(?)"
}

// FaultClass selects how the targeted operation fails.
type FaultClass uint8

const (
	// FaultErr fails the op cleanly: an error, no side effect.
	FaultErr FaultClass = iota
	// FaultENOSPC fails the op with ENOSPC (no side effect); the log's
	// taxonomy classifies the resulting fail-stop as ErrDiskFull.
	FaultENOSPC
	// FaultShortWrite persists a prefix of the buffer and reports the
	// short count with an error — the kernel wrote what fit. Non-write
	// ops degrade to FaultErr.
	FaultShortWrite
	// FaultTornWrite persists a prefix of the buffer but reports total
	// failure (0, err) — the write errored after bytes reached the
	// platter. Non-write ops degrade to FaultErr.
	FaultTornWrite
	// FaultBitFlip lets the fsync succeed, then flips one bit of the
	// last byte written through the handle and reports success — the
	// firmware lied. Only sync ops fire; every other kind is a no-op
	// (silent corruption has no meaning for them).
	FaultBitFlip
)

func (c FaultClass) String() string {
	switch c {
	case FaultErr:
		return "err"
	case FaultENOSPC:
		return "enospc"
	case FaultShortWrite:
		return "short-write"
	case FaultTornWrite:
		return "torn-write"
	case FaultBitFlip:
		return "bit-flip"
	}
	return "fault(?)"
}

// FaultPlan names which operation fails and how.
type FaultPlan struct {
	// FailAt is the 0-based global op index to fail; negative plans
	// never fire (pure counting).
	FailAt int64
	// Class is the failure behavior at FailAt.
	Class FaultClass
	// Persist additionally fails every write op after FailAt — a disk
	// that filled up and stays full. Metadata ops and reads keep
	// working, which is exactly what lets the scrub and a later clean
	// reopen observe the acknowledged prefix.
	Persist bool
}

// NewFaultFS wraps inner (nil: the real OS) with plan.
func NewFaultFS(inner FS, plan FaultPlan) *FaultFS {
	if inner == nil {
		inner = osFS{}
	}
	return &FaultFS{inner: inner, plan: plan}
}

// FaultFS implements FS. See the type-level comment on the package's
// fault model.
type FaultFS struct {
	inner FS
	plan  FaultPlan

	mu    sync.Mutex
	n     int64
	trace []OpKind
}

// Ops returns how many operations have been issued so far.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Trace returns a copy of the per-op kinds issued so far, index-aligned
// with FaultPlan.FailAt.
func (f *FaultFS) Trace() []OpKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]OpKind(nil), f.trace...)
}

// fire counts one op and reports whether (and how) it must fail.
func (f *FaultFS) fire(kind OpKind) (FaultClass, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := f.n
	f.n++
	f.trace = append(f.trace, kind)
	p := f.plan
	if p.FailAt < 0 {
		return 0, false
	}
	hit := i == p.FailAt || (p.Persist && i > p.FailAt && kind == KindWrite)
	if !hit {
		return 0, false
	}
	switch p.Class {
	case FaultBitFlip:
		if kind != KindSync {
			return 0, false
		}
	}
	return p.Class, true
}

// errFor is the error an injected non-write failure reports.
func errFor(class FaultClass) error {
	if class == FaultENOSPC {
		return fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)
	}
	return ErrInjected
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if class, hit := f.fire(KindOpen); hit {
		return nil, errFor(class)
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{fs: f, f: inner, name: name}
	if flag&os.O_APPEND != 0 {
		// Track the append offset so a bit flip knows where the last
		// write landed. Internal, uncounted: the op trace must be
		// identical between reference and fault runs.
		if fi, err := inner.Stat(); err == nil {
			ff.end = fi.Size()
		}
	}
	return ff, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if class, hit := f.fire(KindRename); hit {
		return errFor(class)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if class, hit := f.fire(KindRemove); hit {
		return errFor(class)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if class, hit := f.fire(KindRead); hit {
		return nil, errFor(class)
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if class, hit := f.fire(KindReadDir); hit {
		return nil, errFor(class)
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if class, hit := f.fire(KindMkdir); hit {
		return errFor(class)
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if class, hit := f.fire(KindTruncate); hit {
		return errFor(class)
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	if class, hit := f.fire(KindSyncDir); hit {
		return errFor(class)
	}
	return f.inner.SyncDir(dir)
}

// faultFile wraps one open file, tracking the end offset of bytes
// written through it (the bit-flip target).
type faultFile struct {
	fs   *FaultFS
	f    File
	name string
	end  int64
}

func (f *faultFile) Write(p []byte) (int, error) {
	class, hit := f.fs.fire(KindWrite)
	if !hit {
		n, err := f.f.Write(p)
		f.end += int64(n)
		return n, err
	}
	switch class {
	case FaultShortWrite:
		k := len(p) / 2
		n, _ := f.f.Write(p[:k])
		f.end += int64(n)
		return n, fmt.Errorf("%w: %w", ErrInjected, io.ErrShortWrite)
	case FaultTornWrite:
		k := (len(p) + 1) / 2
		n, _ := f.f.Write(p[:k])
		f.end += int64(n)
		return 0, ErrInjected
	case FaultBitFlip:
		// Silent corruption belongs to fsync; the write proceeds.
		n, err := f.f.Write(p)
		f.end += int64(n)
		return n, err
	default:
		return 0, errFor(class)
	}
}

func (f *faultFile) Sync() error {
	class, hit := f.fs.fire(KindSync)
	if !hit {
		return f.f.Sync()
	}
	if class == FaultBitFlip {
		if err := f.f.Sync(); err != nil {
			return err
		}
		f.flipLastByte()
		return nil // the firmware reported success
	}
	return errFor(class)
}

// flipLastByte corrupts the last byte written through this handle, on
// disk, via uncounted inner-FS operations.
func (f *faultFile) flipLastByte() {
	if f.end == 0 {
		return
	}
	data, err := f.fs.inner.ReadFile(f.name)
	if err != nil || int64(len(data)) < f.end {
		return
	}
	w, err := f.fs.inner.OpenFile(f.name, os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer w.Close()
	w.WriteAt([]byte{data[f.end-1] ^ 0x80}, f.end-1) //nolint:errcheck
	w.Sync()                                         //nolint:errcheck
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	// Not on the log's own path; uncounted pass-through.
	return f.f.WriteAt(p, off)
}

func (f *faultFile) Close() error {
	class, hit := f.fs.fire(KindClose)
	if !hit {
		return f.f.Close()
	}
	// Close the real handle either way (no fd leak across a torture
	// walk) and report a late write-back failure.
	f.f.Close() //nolint:errcheck
	return errFor(class)
}

func (f *faultFile) Stat() (os.FileInfo, error) {
	if class, hit := f.fs.fire(KindStat); hit {
		return nil, errFor(class)
	}
	return f.f.Stat()
}

func (f *faultFile) Truncate(size int64) error {
	class, hit := f.fs.fire(KindFileTruncate)
	if !hit {
		err := f.f.Truncate(size)
		if err == nil && f.end > size {
			f.end = size
		}
		return err
	}
	return errFor(class)
}

package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/storage"
)

const testSchema = `
class item is
    instance variables are
        a : integer
        b : integer
        label : string
        flag : boolean
        ref : item
    method noop is
    end
end
`

func newTestStore(t *testing.T) *storage.Store {
	t.Helper()
	sch, err := schema.FromSource(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	return storage.NewStore(sch)
}

// image is the expected state: OID → slots (nil entry = deleted).
type image map[storage.OID][]storage.Value

func (im image) clone() image {
	out := make(image, len(im))
	for k, v := range im {
		out[k] = append([]storage.Value(nil), v...)
	}
	return out
}

// storeImage captures every live instance of the store.
func storeImage(st *storage.Store) image {
	out := image{}
	for _, cls := range st.Schema().Order {
		for _, oid := range st.ExtentOf(cls) {
			if in, ok := st.Get(oid); ok {
				out[oid] = in.Snapshot()
			}
		}
	}
	return out
}

// workload drives a fixed sequence of commit records through a fresh
// log in dir and returns the expected image after each record (index 0
// = empty store) plus the raw segment bytes.
func workload(t *testing.T, dir string) (snaps []image, data []byte) {
	t.Helper()
	st := newTestStore(t)
	l, info, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.Checkpoint {
		t.Fatalf("fresh dir recovered %+v", info)
	}
	cls := st.Schema().Class("item")
	model := image{}
	snaps = append(snaps, model.clone())

	mk := func(vals ...storage.Value) *storage.Instance {
		in, err := st.NewInstance(cls, vals...)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	commitRec := func(build func(c *commit)) {
		c := l.BeginCommit(uint64(len(snaps)), 0)
		build(c)
		if err := c.Commit(); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, model.clone())
	}

	in1 := mk(storage.IntV(1), storage.IntV(2), storage.StrV("one"), storage.BoolV(false), storage.RefV(0))
	in2 := mk(storage.IntV(10), storage.IntV(20), storage.StrV("two"), storage.BoolV(true), storage.RefV(in1.OID))
	commitRec(func(c *commit) {
		c.Create(cls.ID, uint64(in1.OID), in1)
		c.Create(cls.ID, uint64(in2.OID), in2)
		model[in1.OID] = in1.Snapshot()
		model[in2.OID] = in2.Snapshot()
	})
	commitRec(func(c *commit) {
		in1.Set(0, storage.IntV(100))
		c.Write(uint64(in1.OID), 0, in1.Get(0))
		model[in1.OID][0] = storage.IntV(100)
	})
	commitRec(func(c *commit) {
		in2.Set(2, storage.StrV("renamed"))
		in1.Set(3, storage.BoolV(true))
		c.Write(uint64(in2.OID), 2, in2.Get(2))
		c.Write(uint64(in1.OID), 3, in1.Get(3))
		model[in2.OID][2] = storage.StrV("renamed")
		model[in1.OID][3] = storage.BoolV(true)
	})
	in3 := mk(storage.IntV(-7), storage.IntV(0), storage.StrV(""), storage.BoolV(false), storage.RefV(in2.OID))
	commitRec(func(c *commit) {
		c.Create(cls.ID, uint64(in3.OID), in3)
		model[in3.OID] = in3.Snapshot()
	})
	commitRec(func(c *commit) {
		if _, err := st.Delete(in2.OID); err != nil {
			t.Fatal(err)
		}
		c.Delete(uint64(in2.OID))
		delete(model, in2.OID)
	})
	commitRec(func(c *commit) {
		in3.Set(1, storage.IntV(-999))
		c.Write(uint64(in3.OID), 1, in3.Get(1))
		model[in3.OID][1] = storage.IntV(-999)
	})

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	return snaps, data
}

// boundaries returns the byte offset after each complete record.
func boundaries(t *testing.T, data []byte) []int64 {
	t.Helper()
	out := []int64{0}
	pos := int64(0)
	for pos < int64(len(data)) {
		if int64(len(data))-pos < frameHeaderSize {
			t.Fatalf("trailing garbage at %d", pos)
		}
		size := binary.LittleEndian.Uint32(data[pos:])
		pos += frameHeaderSize + int64(size)
		out = append(out, pos)
	}
	return out
}

func openDir(t *testing.T, dir string) (*Log, *storage.Store, RecoveryInfo) {
	t.Helper()
	st := newTestStore(t)
	l, info, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l, st, info
}

func TestRecoveryFullLog(t *testing.T) {
	dir := t.TempDir()
	snaps, _ := workload(t, dir)
	l, st, info := openDir(t, dir)
	defer l.Close()
	if info.Records != int64(len(snaps)-1) || info.TornTailBytes != 0 {
		t.Fatalf("recovery info %+v, want %d records", info, len(snaps)-1)
	}
	if got, want := storeImage(st), snaps[len(snaps)-1]; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered image\n%v\nwant\n%v", got, want)
	}
	// OID watermark is past everything the log names: new allocations
	// never collide with logged instances.
	if st.MaxOID() < 3 {
		t.Fatalf("MaxOID after recovery = %d, want ≥ 3", st.MaxOID())
	}
}

// The ISSUE's core acceptance: a crash at ANY byte of the log — every
// record boundary and every torn intermediate position — recovers
// exactly the committed prefix, and recovering the same log again is a
// no-op.
func TestRecoveryKillAtEveryByte(t *testing.T) {
	srcDir := t.TempDir()
	snaps, data := workload(t, srcDir)
	bs := boundaries(t, data)
	if len(bs) != len(snaps) {
		t.Fatalf("%d boundaries for %d snapshots", len(bs), len(snaps))
	}
	complete := func(cut int64) int {
		k := 0
		for k+1 < len(bs) && bs[k+1] <= cut {
			k++
		}
		return k
	}
	for cut := int64(0); cut <= int64(len(data)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		k := complete(cut)
		l, st, info := openDir(t, dir)
		if info.Records != int64(k) {
			t.Fatalf("cut %d: applied %d records, want %d", cut, info.Records, k)
		}
		wantTorn := cut - bs[k]
		if info.TornTailBytes != wantTorn {
			t.Fatalf("cut %d: torn %d bytes, want %d", cut, info.TornTailBytes, wantTorn)
		}
		if got := storeImage(st); !reflect.DeepEqual(got, snaps[k]) {
			t.Fatalf("cut %d: image\n%v\nwant\n%v", cut, got, snaps[k])
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Second recovery of the (now truncated) log: same state, no
		// torn tail — replaying a log twice is a no-op.
		l2, st2, info2 := openDir(t, dir)
		if info2.TornTailBytes != 0 || info2.Records != int64(k) {
			t.Fatalf("cut %d second recovery: %+v", cut, info2)
		}
		if got := storeImage(st2); !reflect.DeepEqual(got, snaps[k]) {
			t.Fatalf("cut %d: second recovery diverged", cut)
		}
		l2.Close()
	}
}

// A log can keep appending after a torn-tail recovery.
func TestRecoveryAppendAfterTorn(t *testing.T) {
	dir := t.TempDir()
	snaps, data := workload(t, dir)
	bs := boundaries(t, data)
	cut := bs[2] + 3 // mid-record tear after two complete records
	if err := os.Truncate(segmentPath(dir, 1), cut); err != nil {
		t.Fatal(err)
	}
	l, st, info := openDir(t, dir)
	if info.Records != 2 || info.TornTailBytes != 3 {
		t.Fatalf("recovery info %+v", info)
	}
	cls := st.Schema().Class("item")
	in, err := st.NewInstance(cls, storage.IntV(42))
	if err != nil {
		t.Fatal(err)
	}
	c := l.BeginCommit(99, 0)
	c.Create(cls.ID, uint64(in.OID), in)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, st2, info2 := openDir(t, dir)
	defer l2.Close()
	if info2.Records != 3 {
		t.Fatalf("post-append recovery applied %d records, want 3", info2.Records)
	}
	want := snaps[2].clone()
	want[in.OID] = in.Snapshot()
	if got := storeImage(st2); !reflect.DeepEqual(got, want) {
		t.Fatalf("image after torn+append\n%v\nwant\n%v", got, want)
	}
}

// Two identical segments: the same records replayed twice must land on
// the same final state (idempotent apply).
func TestRecoveryDoubleReplayNoop(t *testing.T) {
	srcDir := t.TempDir()
	snaps, data := workload(t, srcDir)
	dir := t.TempDir()
	if err := os.WriteFile(segmentPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(dir, 2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, st, info := openDir(t, dir)
	defer l.Close()
	if info.Segments != 2 || info.Records != 2*int64(len(snaps)-1) {
		t.Fatalf("recovery info %+v", info)
	}
	if got := storeImage(st); !reflect.DeepEqual(got, snaps[len(snaps)-1]) {
		t.Fatalf("double replay diverged:\n%v\nwant\n%v", got, snaps[len(snaps)-1])
	}
}

func TestRecoveryCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cls := st.Schema().Class("item")
	in, err := st.NewInstance(cls, storage.IntV(1))
	if err != nil {
		t.Fatal(err)
	}
	c := l.BeginCommit(1, 0)
	c.Create(cls.ID, uint64(in.OID), in)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Segment 1 is the first checkpoint's replay tail for the fallback
	// chain (there is no checkpoint.prev yet): it must survive until the
	// next checkpoint makes it unreachable.
	if _, err := os.Stat(segmentPath(dir, 1)); err != nil {
		t.Fatalf("segment 1 deleted by the first checkpoint, fallback lost: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointName)); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}
	// Post-checkpoint commits land in segment 2.
	in.Set(0, storage.IntV(5))
	c = l.BeginCommit(2, 0)
	c.Write(uint64(in.OID), 0, in.Get(0))
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// A second checkpoint folds them in too, demotes the first
	// checkpoint to checkpoint.prev, and culls segment 1 — no fallback
	// can need it anymore.
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segmentPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("segment 1 not culled after the second checkpoint: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointPrev)); err != nil {
		t.Fatalf("checkpoint.prev missing after the second checkpoint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, st2, info := openDir(t, dir)
	defer l2.Close()
	if !info.Checkpoint {
		t.Fatal("recovery did not load the checkpoint")
	}
	if info.Records != 0 {
		t.Fatalf("post-checkpoint recovery replayed %d records, want 0", info.Records)
	}
	got, ok := st2.Get(in.OID)
	if !ok || got.Get(0) != storage.IntV(5) {
		t.Fatalf("checkpointed value lost: %v", got)
	}
	if st2.MaxOID() < in.OID {
		t.Fatalf("MaxOID %d below checkpointed instance %d", st2.MaxOID(), in.OID)
	}
}

// Stray files that merely share a segment's name prefix (backups,
// editor droppings) are ignored — Sscanf alone would count
// "wal-000001.log.bak" as segment 1 and fake a segment gap.
func TestRecoveryIgnoresStraySegmentLikeFiles(t *testing.T) {
	dir := t.TempDir()
	snaps, data := workload(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "wal-000001.log.bak"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-1.log"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, st, info := openDir(t, dir)
	defer l.Close()
	if info.Segments != 1 {
		t.Fatalf("replayed %d segments, want 1", info.Segments)
	}
	if got := storeImage(st); !reflect.DeepEqual(got, snaps[len(snaps)-1]) {
		t.Fatal("stray files corrupted recovery")
	}
}

func TestRecoveryIgnoresCheckpointTmp(t *testing.T) {
	dir := t.TempDir()
	snaps, _ := workload(t, dir)
	if err := os.WriteFile(filepath.Join(dir, checkpointTmp), []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, st, _ := openDir(t, dir)
	defer l.Close()
	if got := storeImage(st); !reflect.DeepEqual(got, snaps[len(snaps)-1]) {
		t.Fatal("checkpoint.tmp garbage corrupted recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointTmp)); !os.IsNotExist(err) {
		t.Fatal("checkpoint.tmp not cleaned up")
	}
}

// Concurrent committers share fsyncs through the group-commit window,
// and everything each of them was acknowledged for survives recovery.
func TestRecoveryGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{GroupCommitWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	cls := st.Schema().Class("item")
	const workers = 8
	const commitsEach = 50
	insts := make([]*storage.Instance, workers)
	c := l.BeginCommit(1, 0)
	for i := range insts {
		in, err := st.NewInstance(cls, storage.IntV(0))
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = in
		c.Create(cls.ID, uint64(in.OID), in)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := insts[w]
			for i := 1; i <= commitsEach; i++ {
				in.Set(0, storage.IntV(int64(i)))
				c := l.BeginCommit(uint64(100 + w*1000 + i), 0)
				c.Write(uint64(in.OID), 0, in.Get(0))
				if err := c.Commit(); err != nil {
					errs <- fmt.Errorf("worker %d commit %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := l.Stats()
	if want := int64(workers*commitsEach + 1); stats.Records != want {
		t.Fatalf("logged %d records, want %d", stats.Records, want)
	}
	if stats.Batches > stats.Records {
		t.Fatalf("more batches (%d) than records (%d)?", stats.Batches, stats.Records)
	}
	t.Logf("group commit: %d records in %d fsync batches", stats.Records, stats.Batches)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, st2, info := openDir(t, dir)
	defer l2.Close()
	if info.Records != int64(workers*commitsEach+1) {
		t.Fatalf("recovered %d records", info.Records)
	}
	for w, in := range insts {
		rec, ok := st2.Get(in.OID)
		if !ok || rec.Get(0) != storage.IntV(commitsEach) {
			t.Fatalf("worker %d instance: %v (want %d)", w, rec.Get(0), commitsEach)
		}
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	c := l.BeginCommit(1, 0)
	c.Delete(42)
	if err := c.Commit(); err != ErrClosed {
		t.Fatalf("commit after close = %v, want ErrClosed", err)
	}
	if err := l.Checkpoint(); err != ErrClosed {
		t.Fatalf("checkpoint after close = %v, want ErrClosed", err)
	}
}

func TestOpenRejectsNonEmptyStore(t *testing.T) {
	st := newTestStore(t)
	if _, err := st.NewInstance(st.Schema().Class("item"), storage.IntV(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(t.TempDir(), st, Options{}); err == nil {
		t.Fatal("Open accepted a non-empty store")
	}
}

// A log directory written under one schema refuses to replay under a
// schema whose dense IDs or slot layouts bind differently — even a
// shape-compatible class swap must fail loudly, not rebind silently.
func TestRecoveryRejectsDifferentSchema(t *testing.T) {
	dir := t.TempDir()
	workload(t, dir)
	other, err := schema.FromSource(`
class impostor is
    instance variables are
        a : integer
        b : integer
        label : string
        flag : boolean
        ref : impostor
    method noop is
    end
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, storage.NewStore(other), Options{}); err == nil {
		t.Fatal("Open accepted a log written under a different schema")
	}
	// The original schema still opens.
	l, _, err := Open(dir, newTestStore(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
}

// After a write/fsync failure the log is fail-stop: no later commit is
// acknowledged, so nothing durable can ever sit beyond corrupt bytes.
func TestFailStopAfterWriteError(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wantErr := fmt.Errorf("injected disk failure")
	l.markBroken(wantErr) //nolint:errcheck
	c := l.BeginCommit(1, 0)
	c.Delete(42)
	if err := c.Commit(); err == nil {
		t.Fatal("commit succeeded on a failed log")
	}
	if err := l.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded on a failed log")
	}
}

// A commit record beyond the recovery-side size bound is rejected at
// Commit (the transaction aborts) instead of being written as a frame
// recovery would classify as garbage.
func TestOversizedCommitRejected(t *testing.T) {
	old := maxRecordSize
	maxRecordSize = 1 << 16
	defer func() { maxRecordSize = old }()
	dir := t.TempDir()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	huge := string(make([]byte, 1<<15))
	c := l.BeginCommit(1, 0)
	for i := 0; i < 5; i++ {
		c.Write(1, 2, storage.StrV(huge))
	}
	if err := c.Commit(); err == nil {
		t.Fatal("oversized record accepted")
	}
	// The log is still healthy for normal commits.
	c = l.BeginCommit(2, 0)
	c.Delete(42)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestValueRoundtrip(t *testing.T) {
	vals := []storage.Value{
		storage.IntV(0), storage.IntV(-1), storage.IntV(1 << 60), storage.IntV(-(1 << 60)),
		storage.BoolV(true), storage.BoolV(false),
		storage.StrV(""), storage.StrV("héllo\x00world"),
		storage.RefV(0), storage.RefV(1 << 40),
	}
	var b []byte
	for _, v := range vals {
		b = appendValue(b, v)
	}
	d := decoder{b: b}
	for i, want := range vals {
		got := d.value()
		if d.err != nil {
			t.Fatalf("value %d: %v", i, d.err)
		}
		if got != want {
			t.Fatalf("value %d: got %v, want %v", i, got, want)
		}
	}
	if d.pos != len(b) {
		t.Fatalf("trailing bytes: %d of %d", d.pos, len(b))
	}
}

// TestRecoveryEpochRoundTrip verifies the commit-epoch clock survives a
// restart through both durability paths: replayed log records carry
// their epoch, and a checkpoint carries the highest epoch it compacted
// away. Recovery must restart the store's clock past everything it saw
// and seed snapshot versions for the recovered instances.
func TestRecoveryEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cls := st.Schema().Class("item")
	in, err := st.NewInstance(cls, storage.IntV(0), storage.IntV(0), storage.StrV("x"), storage.BoolV(false), storage.RefV(0))
	if err != nil {
		t.Fatal(err)
	}
	const commits = 7
	for e := uint64(1); e <= commits; e++ {
		in.Set(0, storage.IntV(int64(e)))
		c := l.BeginCommit(e, e)
		if e == 1 {
			c.Create(cls.ID, uint64(in.OID), in)
		} else {
			c.Write(uint64(in.OID), 0, in.Get(0))
		}
		if err := c.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the replayed records must push the clock to `commits`.
	st2 := newTestStore(t)
	l2, info, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != commits {
		t.Fatalf("recovered epoch %d, want %d", info.Epoch, commits)
	}
	if got := st2.StableEpoch(); got != commits {
		t.Fatalf("stable epoch after recovery = %d, want %d", got, commits)
	}
	// Recovered instances are seeded for snapshot readers.
	in2, ok := st2.Get(in.OID)
	if !ok {
		t.Fatal("instance lost in recovery")
	}
	if v, ok := in2.SnapshotGet(0, commits); !ok || v.I != commits {
		t.Fatalf("snapshot of recovered instance: %v ok=%t, want %d", v, ok, commits)
	}

	// Compact everything into a checkpoint, then commit nothing more:
	// the epoch must now ride the checkpoint alone.
	if err := l2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	st3 := newTestStore(t)
	l3, info3, err := Open(dir, st3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if info3.Records != 0 {
		t.Fatalf("checkpoint did not absorb the records: %d replayed", info3.Records)
	}
	if info3.Epoch != commits {
		t.Fatalf("epoch from checkpoint = %d, want %d", info3.Epoch, commits)
	}
	if e := st3.AllocEpoch(); e != commits+1 {
		t.Fatalf("first post-recovery epoch = %d, want %d", e, commits+1)
	}
	st3.FinishEpoch(commits + 1)
}

package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"

	"repro/internal/schema"
	"repro/internal/storage"
)

// frameBytes wraps an arbitrary payload in a valid frame (length +
// CRC), so the fuzzer reaches the record decoder instead of bouncing
// off the checksum.
func frameBytes(payload []byte) []byte {
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// fuzzOpen writes data as segment 1 of a fresh directory and opens it.
// Open must never panic: it replays what is valid, truncates a torn
// tail, or fail-stops with an error. When it succeeds, the truncated
// log must reopen cleanly (recovery converged).
func fuzzOpen(t *testing.T, data []byte) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(segmentPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t)
	l, info, err := Open(dir, st, Options{})
	if err != nil {
		return // fail-stop on garbage is a valid outcome
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close after successful open: %v", err)
	}
	st2 := newTestStore(t)
	l2, info2, err := Open(dir, st2, Options{})
	if err != nil {
		t.Fatalf("reopen after successful open: %v", err)
	}
	defer l2.Close()
	if info2.TornTailBytes != 0 {
		t.Fatalf("second recovery still torn (%d bytes) after first truncated %d",
			info2.TornTailBytes, info.TornTailBytes)
	}
	if info2.Records != info.Records {
		t.Fatalf("second recovery applied %d records, first %d", info2.Records, info.Records)
	}
}

// FuzzWALRecord feeds arbitrary bytes to recovery, both as raw segment
// content (exercises framing, CRC, torn-tail truncation) and wrapped in
// a valid frame (exercises the record decoder and idempotent apply
// against CRC-clean garbage). The invariant is the WAL contract:
// wal.Open never panics — it replays, truncates the torn tail, or
// fail-stops.
func FuzzWALRecord(f *testing.F) {
	// Seed with well-formed records so mutation explores the decoder.
	sch, err := schema.FromSource(testSchema)
	if err != nil {
		f.Fatal(err)
	}
	cls := uint64(sch.Class("item").ID)
	var rec []byte
	rec = append(rec, recCommit)
	rec = binary.LittleEndian.AppendUint64(rec, 7) // txnID
	rec = binary.LittleEndian.AppendUint32(rec, 3) // nOps
	rec = append(rec, OpCreate)
	rec = binary.AppendUvarint(rec, cls)
	rec = binary.AppendUvarint(rec, 1) // OID
	rec = binary.AppendUvarint(rec, 5) // nSlots
	rec = appendValue(rec, storage.IntV(42))
	rec = appendValue(rec, storage.IntV(-1))
	rec = appendValue(rec, storage.StrV("hello"))
	rec = appendValue(rec, storage.BoolV(true))
	rec = appendValue(rec, storage.RefV(1))
	rec = append(rec, OpWrite)
	rec = binary.AppendUvarint(rec, 1) // OID
	rec = binary.AppendUvarint(rec, 0) // slot
	rec = appendValue(rec, storage.IntV(9))
	rec = append(rec, OpDelete)
	rec = binary.AppendUvarint(rec, 1)

	f.Add(rec)
	f.Add(frameBytes(rec))
	f.Add(frameBytes(rec)[:11])  // torn frame
	f.Add([]byte{})              // empty segment
	f.Add([]byte{1, 2, 3, 4, 5}) // garbage header

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzOpen(t, data)             // raw segment bytes
		fuzzOpen(t, frameBytes(data)) // CRC-valid frame around the bytes
	})
}

package wal

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/storage"
)

const (
	fingerprintName = "schema"
	fingerprintTmp  = "schema.tmp"
)

// schemaFingerprint hashes everything replay depends on — dense class
// ID order and each class's field layout — so a log directory refuses
// to open under a schema whose IDs or slots bind differently. Two
// classes with identical shapes swapped in declaration order would
// otherwise replay each other's instances without any type error.
func schemaFingerprint(sch *schema.Schema) string {
	var b strings.Builder
	for _, cls := range sch.Order {
		fmt.Fprintf(&b, "class %d %s\n", cls.ID, cls.Name)
		for _, p := range cls.Parents {
			fmt.Fprintf(&b, "  inherits %s\n", p.Name)
		}
		for i, f := range cls.Fields {
			fmt.Fprintf(&b, "  slot %d %s %s\n", i, f.QualifiedName(), f.Type)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// checkFingerprint verifies (or, on first open, records) the schema
// fingerprint of a log directory. The first write goes through a tmp
// file + rename: a torn or empty fingerprint after a crash would lock
// the database out of its own valid log forever.
func checkFingerprint(fsys FS, dir string, sch *schema.Schema) error {
	want := schemaFingerprint(sch)
	path := filepath.Join(dir, fingerprintName)
	data, err := fsys.ReadFile(path)
	if err == nil {
		if got := strings.TrimSpace(string(data)); got != want {
			return fmt.Errorf("wal: %s was written under a different schema (fingerprint %s, this schema %s); refusing to replay", dir, got, want)
		}
		return nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	tmp := filepath.Join(dir, fingerprintTmp)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(want + "\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// Open recovers the durable state in dir into st (which must be a fresh,
// empty store) and returns a running log ready to append. Recovery loads
// the newest intact checkpoint (falling back to checkpoint.prev when the
// primary is corrupt or half-renamed), replays every later segment in
// sequence order with idempotent apply — partitioned by instance across
// o.RecoveryWorkers goroutines when a segment is large enough, since
// records touching different OIDs commute — truncates a torn tail off
// the final segment (a crash mid-batch leaves at most one incomplete
// record suffix, since every batch is written before any commit in it
// is acknowledged), and continues appending to that segment. A missing
// or empty directory is a fresh database.
func Open(dir string, st *storage.Store, o Options) (*Log, RecoveryInfo, error) {
	o.normalize()
	fsys := o.FS
	if st.Count() != 0 || st.MaxOID() != 0 {
		return nil, RecoveryInfo{}, fmt.Errorf("wal: Open needs an empty store")
	}
	sch := st.Schema()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, err
	}
	// Half-written tmp files from a crash mid-checkpoint / mid-first-open.
	fsys.Remove(filepath.Join(dir, checkpointTmp))  //nolint:errcheck
	fsys.Remove(filepath.Join(dir, fingerprintTmp)) //nolint:errcheck
	if err := checkFingerprint(fsys, dir, sch); err != nil {
		return nil, RecoveryInfo{}, err
	}

	var info RecoveryInfo
	base, ckptEpoch, fellBack, err := loadCheckpoint(fsys, dir, st, sch)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	info.Checkpoint = base != checkpointSeq0
	info.CheckpointSeq = base
	info.CheckpointFallback = fellBack

	seqs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	r := newReplayer(st, sch, o.RecoveryWorkers)
	info.Workers = r.workers
	last := base // highest segment seen; the log appends to (or after) it
	for i, seq := range seqs {
		if seq <= base {
			// Dead segment: retained as the replay tail of
			// checkpoint.prev (or one a crash prevented Checkpoint from
			// deleting). The next Checkpoint culls everything the
			// fallback chain can no longer need.
			continue
		}
		if seq != last+1 {
			return nil, RecoveryInfo{}, fmt.Errorf("wal: segment gap: %d follows %d", seq, last)
		}
		path := segmentPath(dir, seq)
		data, err := fsys.ReadFile(path)
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
		records, tornAt, err := r.segment(data)
		if err != nil {
			return nil, RecoveryInfo{}, fmt.Errorf("wal: %s %w", path, err)
		}
		if tornAt >= 0 {
			if i != len(seqs)-1 {
				return nil, RecoveryInfo{}, fmt.Errorf("wal: sealed segment %d has a torn record", seq)
			}
			if err := truncateSegment(fsys, path, tornAt); err != nil {
				return nil, RecoveryInfo{}, err
			}
			info.TornTailBytes = int64(len(data)) - tornAt
		}
		info.Segments++
		info.Records += int64(records)
		last = seq
	}
	st.SortExtents()
	// Restart the epoch clock past every commit recovery saw — from the
	// checkpoint image or a replayed record — then seed an epoch-0
	// version for each recovered instance so snapshot readers begun
	// before the first post-recovery commit see the recovered state.
	epoch := ckptEpoch
	if r.maxEpoch > epoch {
		epoch = r.maxEpoch
	}
	st.SetRecoveredEpoch(epoch)
	st.SeedVersions()
	info.Epoch = epoch

	l := &Log{dir: dir, sch: sch, opts: o, fs: fsys}
	l.baseSeq.Store(base)
	if last == base {
		// Fresh directory (or checkpoint with no tail): start a segment.
		l.seq = base + 1
		f, err := fsys.OpenFile(segmentPath(dir, l.seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
		if err := fsys.SyncDir(dir); err != nil {
			f.Close()
			return nil, RecoveryInfo{}, err
		}
		l.f = f
	} else {
		l.seq = last
		f, err := fsys.OpenFile(segmentPath(dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, RecoveryInfo{}, err
		}
		l.f = f
		l.size = fi.Size()
	}
	l.start()
	return l, info, nil
}

// listSegments returns the segment sequences present in dir, ascending.
func listSegments(fsys FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		// Sscanf tolerates trailing characters, so round-trip the name:
		// "wal-000001.log.bak" must not count as segment 1.
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d.log", &seq); n != 1 {
			continue
		}
		if filepath.Base(segmentPath(dir, seq)) != e.Name() {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// truncateSegment drops the torn suffix so the log can append cleanly.
func truncateSegment(fsys FS, path string, validEnd int64) error {
	if err := fsys.Truncate(path, validEnd); err != nil {
		return err
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/schema"
	"repro/internal/storage"
)

// Checkpointing is log compaction by replay. The live store cannot be
// snapshotted directly: transactions write in place and roll back with
// in-memory undo, so at any instant the store mixes committed and
// uncommitted slot values. The log, however, contains only committed
// effects — so a transactionally consistent checkpoint is obtained by
// sealing the current segment (one rotation message to the writer
// goroutine; commits keep flowing into the next segment), replaying
// previous checkpoint + sealed segments into a scratch store, and
// serializing that scratch store through the extent-snapshot machinery.
// No live transaction is ever paused and no quiescent point is needed.
//
// Checkpoint file, little-endian:
//
//	magic "FAVWCKP2" · u64 baseSeq · u64 nextOID · u64 epoch · u64 count ·
//	count × (uvarint classID · uvarint OID · uvarint nSlots · values) ·
//	u32 CRC-32C of everything after the magic
//
// The file is written to checkpoint.tmp, fsynced, and renamed over
// checkpoint — after the old checkpoint was demoted to checkpoint.prev —
// then the directory is fsynced. A crash at any point leaves an intact
// checkpoint under one of the two names. The whole-file CRC is verified
// on every load: a corrupt (bit-flipped, truncated) primary makes
// recovery fall back to checkpoint.prev plus the log segments it still
// needs, which is why Checkpoint only deletes segments at or below the
// *previous* base — one full fallback generation is always retained.
const (
	checkpointName = "checkpoint"
	checkpointPrev = "checkpoint.prev"
	checkpointTmp  = "checkpoint.tmp"
	checkpointSeq0 = uint64(0) // "no checkpoint": replay every segment
)

var checkpointMagic = []byte("FAVWCKP2")

// errCheckpointCorrupt classifies damage the CRC trailer (or frame
// structure around it) detects — the cases recovery can survive by
// falling back, as opposed to I/O errors or semantic mismatches.
var errCheckpointCorrupt = errors.New("wal: corrupt checkpoint")

// writeCheckpoint serializes st (a scratch store holding only committed
// state) with base segment sequence baseSeq. demoteOld preserves the
// current primary as checkpoint.prev; when the caller found the primary
// corrupt it passes false so the garbage is dropped instead of
// clobbering the intact .prev the fallback chain relies on. epoch is
// the highest commit epoch covered by the checkpoint image, so a
// recovery that replays no tail still restarts the epoch clock past
// every commit it contains.
func writeCheckpoint(fsys FS, dir string, st *storage.Store, baseSeq, epoch uint64, demoteOld bool) error {
	sch := st.Schema()
	body := make([]byte, 0, 1<<16)
	body = binary.LittleEndian.AppendUint64(body, baseSeq)
	body = binary.LittleEndian.AppendUint64(body, uint64(st.MaxOID()))
	body = binary.LittleEndian.AppendUint64(body, epoch)
	count := uint64(0)
	countAt := len(body)
	body = binary.LittleEndian.AppendUint64(body, 0) // patched below
	var vals []storage.Value
	for _, cls := range sch.Order {
		for _, oid := range st.ExtentOf(cls) {
			in, ok := st.Get(oid)
			if !ok {
				continue
			}
			vals = in.AppendSlots(vals[:0])
			body = binary.AppendUvarint(body, uint64(cls.ID))
			body = binary.AppendUvarint(body, uint64(oid))
			body = binary.AppendUvarint(body, uint64(len(vals)))
			for _, v := range vals {
				body = appendValue(body, v)
			}
			count++
		}
	}
	binary.LittleEndian.PutUint64(body[countAt:], count)

	tmp := filepath.Join(dir, checkpointTmp)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp) //nolint:errcheck // no-op after the rename succeeds
	crc := crc32.Checksum(body, crcTable)
	if _, err := f.Write(checkpointMagic); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(binary.LittleEndian.AppendUint32(nil, crc)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	primary := filepath.Join(dir, checkpointName)
	if demoteOld {
		if err := fsys.Rename(primary, filepath.Join(dir, checkpointPrev)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	} else {
		fsys.Remove(primary) //nolint:errcheck // corrupt primary; .prev stays the fallback
	}
	if err := fsys.Rename(tmp, primary); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// loadCheckpoint applies the newest intact checkpoint into st and
// returns its base segment sequence (checkpointSeq0 when none exists)
// and the commit epoch its image covers. fellBack reports that the
// primary was missing or corrupt and recovery used checkpoint.prev —
// or, before any second checkpoint existed, a full log replay from the
// first segment.
func loadCheckpoint(fsys FS, dir string, st *storage.Store, sch *schema.Schema) (base, epoch uint64, fellBack bool, err error) {
	base, epoch, err = loadCheckpointFile(fsys, filepath.Join(dir, checkpointName), st, sch)
	switch {
	case err == nil:
		return base, epoch, false, nil
	case errors.Is(err, os.ErrNotExist):
		// No primary. A .prev without a primary is the crash window of
		// writeCheckpoint between demote and rename — .prev is intact
		// and its replay tail is still on disk.
		base, epoch, err = loadCheckpointFile(fsys, filepath.Join(dir, checkpointPrev), st, sch)
		if errors.Is(err, os.ErrNotExist) {
			return checkpointSeq0, 0, false, nil // fresh directory
		}
		if err != nil {
			return 0, 0, false, err
		}
		return base, epoch, true, nil
	case errors.Is(err, errCheckpointCorrupt):
		base, epoch, err = loadCheckpointFile(fsys, filepath.Join(dir, checkpointPrev), st, sch)
		if errors.Is(err, os.ErrNotExist) {
			// Corrupt primary, no .prev: only the first checkpoint ever
			// taken can be in this state, and it deleted no segments —
			// a full replay from the first segment reproduces it.
			return checkpointSeq0, 0, true, nil
		}
		if err != nil {
			return 0, 0, false, err
		}
		return base, epoch, true, nil
	default:
		return 0, 0, false, err
	}
}

// loadCheckpointFile applies one checkpoint file into st. Corruption
// the CRC trailer detects is reported as errCheckpointCorrupt — and
// detected before anything is installed, so the store is untouched and
// the caller may fall back. Semantic errors past a valid CRC (unknown
// class, OID watermark, slot arity) stay hard failures: they mean a
// writer bug or foreign file, not disk damage.
func loadCheckpointFile(fsys FS, path string, st *storage.Store, sch *schema.Schema) (uint64, uint64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != string(checkpointMagic) {
		return 0, 0, fmt.Errorf("%w: %s: bad magic", errCheckpointCorrupt, path)
	}
	body := data[len(checkpointMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != wantCRC {
		return 0, 0, fmt.Errorf("%w: %s: CRC mismatch", errCheckpointCorrupt, path)
	}
	d := decoder{b: body}
	baseSeq := d.u64()
	nextOID := d.u64()
	epoch := d.u64()
	count := d.u64()
	for i := uint64(0); i < count && d.err == nil; i++ {
		clsID := d.uvarint()
		oid := d.uvarint()
		ns := d.uvarint()
		if d.err != nil {
			break
		}
		cls := sch.ClassByID(uint32(clsID))
		if cls == nil {
			return 0, 0, fmt.Errorf("wal: checkpoint: unknown class id %d", clsID)
		}
		// OIDs are allocated below the watermark; an instance above it is
		// corruption, and installing it would size the dense page
		// directory to match.
		if oid == 0 || oid > nextOID {
			return 0, 0, fmt.Errorf("wal: checkpoint: instance OID %d outside (0, %d]", oid, nextOID)
		}
		if ns != uint64(cls.NumSlots()) {
			return 0, 0, fmt.Errorf("wal: checkpoint: %s#%d has %d slots, file says %d",
				cls.Name, oid, cls.NumSlots(), ns)
		}
		vals := make([]storage.Value, 0, ns)
		for j := uint64(0); j < ns && d.err == nil; j++ {
			vals = append(vals, d.value())
		}
		if d.err != nil {
			break
		}
		if _, err := st.Install(cls, storage.OID(oid), vals); err != nil {
			return 0, 0, fmt.Errorf("wal: checkpoint: %w", err)
		}
	}
	if d.err != nil {
		return 0, 0, fmt.Errorf("wal: checkpoint: %w", d.err)
	}
	if d.pos != len(body) {
		return 0, 0, fmt.Errorf("wal: checkpoint: %d trailing bytes", len(body)-d.pos)
	}
	st.EnsureOID(storage.OID(nextOID))
	return baseSeq, epoch, nil
}

// Checkpoint compacts the log: it drains and hardens everything
// enqueued so far (so outstanding pipelined futures resolve before
// their segment is sealed), seals the live segment, replays previous
// checkpoint + all sealed segments into a scratch store — on the same
// instance-partitioned parallel replayer recovery uses — writes a new
// checkpoint atomically (demoting the old one to checkpoint.prev) and
// deletes only the segments no fallback can need: those at or below the
// demoted checkpoint's own base. Commits proceed concurrently into the
// new segment throughout.
func (l *Log) Checkpoint() error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	if l.closed.Load() {
		return ErrClosed
	}
	if err := l.Sync(); err != nil {
		return err
	}
	req := &rotateReq{done: make(chan rotateResult, 1)}
	l.rotateCh <- req
	res := <-req.done
	if res.err != nil {
		return res.err
	}
	sealed := res.sealed

	scratch := storage.NewStore(l.sch)
	base, ckptEpoch, fellBack, err := loadCheckpoint(l.fs, l.dir, scratch, l.sch)
	if err != nil {
		return err
	}
	r := newReplayer(scratch, l.sch, l.opts.RecoveryWorkers)
	r.maxEpoch = ckptEpoch
	for seq := base + 1; seq <= sealed; seq++ {
		path := segmentPath(l.dir, seq)
		data, err := l.fs.ReadFile(path)
		if err != nil {
			return err
		}
		if _, tornAt, err := r.segment(data); err != nil {
			return fmt.Errorf("wal: %s %w", path, err)
		} else if tornAt >= 0 {
			// Sealed segments were written batch by batch before any
			// acknowledgment; a torn record here means real corruption,
			// not a crash artifact.
			return fmt.Errorf("wal: checkpoint: sealed segment %d has a torn record", seq)
		}
	}
	scratch.SortExtents()
	if err := writeCheckpoint(l.fs, l.dir, scratch, sealed, r.maxEpoch, !fellBack); err != nil {
		return err
	}
	l.baseSeq.Store(sealed)
	l.checkpoints.Add(1)
	// The checkpoint just demoted has base `base`: it needs segments
	// (base, sealed] to replay, so only older ones are dead under every
	// fallback. Sweep the directory rather than a range — earlier
	// generations a crash kept alive get culled here too.
	if seqs, err := listSegments(l.fs, l.dir); err == nil {
		for _, seq := range seqs {
			if seq <= base {
				l.fs.Remove(segmentPath(l.dir, seq)) //nolint:errcheck // best-effort compaction
			}
		}
	}
	return nil
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/schema"
	"repro/internal/storage"
)

// Checkpointing is log compaction by replay. The live store cannot be
// snapshotted directly: transactions write in place and roll back with
// in-memory undo, so at any instant the store mixes committed and
// uncommitted slot values. The log, however, contains only committed
// effects — so a transactionally consistent checkpoint is obtained by
// sealing the current segment (one rotation message to the writer
// goroutine; commits keep flowing into the next segment), replaying
// previous checkpoint + sealed segments into a scratch store, and
// serializing that scratch store through the extent-snapshot machinery.
// No live transaction is ever paused and no quiescent point is needed.
//
// Checkpoint file, little-endian:
//
//	magic "FAVWCKP1" · u64 baseSeq · u64 nextOID · u64 count ·
//	count × (uvarint classID · uvarint OID · uvarint nSlots · values) ·
//	u32 CRC-32C of everything after the magic
//
// The file is written to checkpoint.tmp, fsynced, renamed over
// checkpoint, and the directory fsynced — a crash at any point leaves
// either the old or the new checkpoint fully intact. Segments ≤ baseSeq
// are deleted afterwards; recovery ignores them even if deletion never
// happened.

const (
	checkpointName = "checkpoint"
	checkpointTmp  = "checkpoint.tmp"
	checkpointSeq0 = uint64(0) // "no checkpoint": replay every segment
)

var checkpointMagic = []byte("FAVWCKP1")

// writeCheckpoint serializes st (a scratch store holding only committed
// state) with base segment sequence baseSeq, atomically replacing any
// previous checkpoint.
func writeCheckpoint(dir string, st *storage.Store, baseSeq uint64) error {
	sch := st.Schema()
	body := make([]byte, 0, 1<<16)
	body = binary.LittleEndian.AppendUint64(body, baseSeq)
	body = binary.LittleEndian.AppendUint64(body, uint64(st.MaxOID()))
	count := uint64(0)
	countAt := len(body)
	body = binary.LittleEndian.AppendUint64(body, 0) // patched below
	var vals []storage.Value
	for _, cls := range sch.Order {
		for _, oid := range st.ExtentOf(cls) {
			in, ok := st.Get(oid)
			if !ok {
				continue
			}
			vals = in.AppendSlots(vals[:0])
			body = binary.AppendUvarint(body, uint64(cls.ID))
			body = binary.AppendUvarint(body, uint64(oid))
			body = binary.AppendUvarint(body, uint64(len(vals)))
			for _, v := range vals {
				body = appendValue(body, v)
			}
			count++
		}
	}
	binary.LittleEndian.PutUint64(body[countAt:], count)

	tmp := filepath.Join(dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	crc := crc32.Checksum(body, crcTable)
	if _, err := f.Write(checkpointMagic); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(binary.LittleEndian.AppendUint32(nil, crc)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadCheckpoint applies the checkpoint file (if any) into st and
// returns its base segment sequence (checkpointSeq0 when none exists).
func loadCheckpoint(dir string, st *storage.Store, sch *schema.Schema) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if os.IsNotExist(err) {
		return checkpointSeq0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != string(checkpointMagic) {
		return 0, fmt.Errorf("wal: checkpoint: bad magic")
	}
	body := data[len(checkpointMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != wantCRC {
		return 0, fmt.Errorf("wal: checkpoint: CRC mismatch")
	}
	d := decoder{b: body}
	baseSeq := d.u64()
	nextOID := d.u64()
	count := d.u64()
	for i := uint64(0); i < count && d.err == nil; i++ {
		clsID := d.uvarint()
		oid := d.uvarint()
		ns := d.uvarint()
		if d.err != nil {
			break
		}
		cls := sch.ClassByID(uint32(clsID))
		if cls == nil {
			return 0, fmt.Errorf("wal: checkpoint: unknown class id %d", clsID)
		}
		// OIDs are allocated below the watermark; an instance above it is
		// corruption, and installing it would size the dense page
		// directory to match.
		if oid == 0 || oid > nextOID {
			return 0, fmt.Errorf("wal: checkpoint: instance OID %d outside (0, %d]", oid, nextOID)
		}
		if ns != uint64(cls.NumSlots()) {
			return 0, fmt.Errorf("wal: checkpoint: %s#%d has %d slots, file says %d",
				cls.Name, oid, cls.NumSlots(), ns)
		}
		vals := make([]storage.Value, 0, ns)
		for j := uint64(0); j < ns && d.err == nil; j++ {
			vals = append(vals, d.value())
		}
		if d.err != nil {
			break
		}
		if _, err := st.Install(cls, storage.OID(oid), vals); err != nil {
			return 0, fmt.Errorf("wal: checkpoint: %w", err)
		}
	}
	if d.err != nil {
		return 0, fmt.Errorf("wal: checkpoint: %w", d.err)
	}
	if d.pos != len(body) {
		return 0, fmt.Errorf("wal: checkpoint: %d trailing bytes", len(body)-d.pos)
	}
	st.EnsureOID(storage.OID(nextOID))
	return baseSeq, nil
}

// Checkpoint compacts the log: it drains and hardens everything
// enqueued so far (so outstanding pipelined futures resolve before
// their segment is sealed), seals the live segment, replays previous
// checkpoint + all sealed segments into a scratch store — on the same
// instance-partitioned parallel replayer recovery uses — writes a new
// checkpoint atomically and deletes the dead segments. Commits proceed
// concurrently into the new segment throughout.
func (l *Log) Checkpoint() error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	if l.closed.Load() {
		return ErrClosed
	}
	if err := l.Sync(); err != nil {
		return err
	}
	req := &rotateReq{done: make(chan rotateResult, 1)}
	l.rotateCh <- req
	res := <-req.done
	if res.err != nil {
		return res.err
	}
	sealed := res.sealed

	scratch := storage.NewStore(l.sch)
	base, err := loadCheckpoint(l.dir, scratch, l.sch)
	if err != nil {
		return err
	}
	r := newReplayer(scratch, l.sch, l.opts.RecoveryWorkers)
	for seq := base + 1; seq <= sealed; seq++ {
		path := segmentPath(l.dir, seq)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, tornAt, err := r.segment(data); err != nil {
			return fmt.Errorf("wal: %s %w", path, err)
		} else if tornAt >= 0 {
			// Sealed segments were written batch by batch before any
			// acknowledgment; a torn record here means real corruption,
			// not a crash artifact.
			return fmt.Errorf("wal: checkpoint: sealed segment %d has a torn record", seq)
		}
	}
	scratch.SortExtents()
	if err := writeCheckpoint(l.dir, scratch, sealed); err != nil {
		return err
	}
	l.baseSeq.Store(sealed)
	l.checkpoints.Add(1)
	for seq := base; seq <= sealed; seq++ {
		os.Remove(segmentPath(l.dir, seq)) //nolint:errcheck // stale segments are skipped anyway
	}
	return nil
}

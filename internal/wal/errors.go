package wal

import (
	"errors"
	"fmt"
	"syscall"
)

// The fail-stop error taxonomy. A durable failure latches the log
// (markBroken); every commit, checkpoint and close from then on reports
// an error that matches ErrLogFailed under errors.Is, and additionally
// ErrDiskFull when the root cause was out-of-space. Callers branch on
// the class, not the concrete cause:
//
//	errors.Is(err, wal.ErrLogFailed)  // the log went fail-stop under this op
//	errors.Is(err, wal.ErrDiskFull)   // ... because the disk filled up
var (
	// ErrLogFailed marks every error produced after the log latched
	// fail-stop, including the one returned by the commit that caused
	// the latch.
	ErrLogFailed = errors.New("wal: log failed (fail-stop)")
	// ErrDiskFull marks fail-stop errors whose root cause is ENOSPC.
	ErrDiskFull = errors.New("wal: disk full")
)

// failStopError is the latched fail-stop error: the first write, fsync
// or rotate failure, frozen. It classifies itself against the sentinel
// taxonomy above while keeping the original cause unwrappable.
type failStopError struct {
	cause error
}

func (e *failStopError) Error() string {
	return fmt.Sprintf("wal: log failed, rejecting further commits: %v", e.cause)
}

func (e *failStopError) Unwrap() error { return e.cause }

func (e *failStopError) Is(target error) bool {
	switch target {
	case ErrLogFailed:
		return true
	case ErrDiskFull:
		return errors.Is(e.cause, syscall.ENOSPC)
	}
	return false
}

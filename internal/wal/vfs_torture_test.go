package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/storage"
)

// The hostile-disk torture suite. A reference run over a counting
// FaultFS measures how many filesystem operations the canonical durable
// workload issues (N) and what kind each one is; the walks below then
// re-run the workload N times, failing exactly op i on run i — the same
// exhaustive structure as the cut-at-every-byte recovery suites, lifted
// from byte offsets to I/O points. Every run must uphold the fail-stop
// contract:
//
//   - no panic anywhere;
//   - a failed commit reports ErrLogFailed (and ErrDiskFull when the
//     injected fault was ENOSPC, and never otherwise);
//   - once a commit fails on a log instance, every later commit on that
//     instance fails too (the latch never clears);
//   - reopening the directory on a healthy disk recovers exactly the
//     acknowledged prefix — nothing acknowledged lost, nothing
//     unacknowledged resurrected.
//
// Bit-flip runs relax the last point: silent post-fsync corruption may
// cost acknowledged commits, but recovery must land on SOME previously
// acknowledged state or refuse with a clean error — never invent state.

// tortureState threads one run: the model of acknowledged state, the
// instances live in the current store, and the per-log-instance
// fail-stop monotonicity flag.
type tortureState struct {
	t      *testing.T
	enospc bool // injected faults are ENOSPC: commit errors must be ErrDiskFull
	flip   bool // silent-corruption run: acknowledged loss allowed, invention not

	model image   // acknowledged state
	acked []image // every state ever acknowledged, in order
	g     int     // commit counter / value generator

	live   []*storage.Instance // instances present in the current store
	failed bool                // current log instance has latched fail-stop
}

// commitOnce builds and commits one record — a create, plus a field
// write and a delete on alternating beats — updating the model only if
// the commit is acknowledged.
func (ts *tortureState) commitOnce(l *Log, st *storage.Store) {
	ts.t.Helper()
	ts.g++
	g := ts.g
	cls := st.Schema().Class("item")
	c := l.BeginCommit(uint64(g), 0)
	var apply []func()

	in, err := st.NewInstance(cls,
		storage.IntV(int64(g)), storage.IntV(int64(2*g)),
		storage.StrV(fmt.Sprintf("g%d", g)), storage.BoolV(g%2 == 0), storage.RefV(0))
	if err != nil {
		ts.t.Fatal(err)
	}
	ts.live = append(ts.live, in)
	c.Create(cls.ID, uint64(in.OID), in)
	img := in.Snapshot()
	apply = append(apply, func() { ts.model[in.OID] = img })

	if g%2 == 1 && len(ts.live) > 1 {
		tgt := ts.live[len(ts.live)-2]
		tgt.Set(0, storage.IntV(int64(1000+g)))
		v := tgt.Get(0)
		c.Write(uint64(tgt.OID), 0, v)
		oid := tgt.OID
		apply = append(apply, func() { ts.model[oid][0] = v })
	}
	if g%3 == 0 && len(ts.live) > 2 {
		victim := ts.live[0]
		ts.live = ts.live[1:]
		if _, err := st.Delete(victim.OID); err != nil {
			ts.t.Fatal(err)
		}
		c.Delete(uint64(victim.OID))
		oid := victim.OID
		apply = append(apply, func() { delete(ts.model, oid) })
	}

	if err := c.Commit(); err != nil {
		if !errors.Is(err, ErrLogFailed) {
			ts.t.Fatalf("commit %d: failure not typed ErrLogFailed: %v", g, err)
		}
		if errors.Is(err, ErrInjected) && ts.enospc != errors.Is(err, ErrDiskFull) {
			ts.t.Fatalf("commit %d: ErrDiskFull classification wrong (plan enospc=%v): %v", g, ts.enospc, err)
		}
		ts.failed = true
		return
	}
	if ts.failed {
		ts.t.Fatalf("commit %d acknowledged after an earlier commit failed on the same log", g)
	}
	for _, f := range apply {
		f()
	}
	ts.acked = append(ts.acked, ts.model.clone())
}

// rebuildLive collects the instances of a freshly recovered store in
// extent order.
func rebuildLive(st *storage.Store) []*storage.Instance {
	var live []*storage.Instance
	for _, cls := range st.Schema().Order {
		for _, oid := range st.ExtentOf(cls) {
			if in, ok := st.Get(oid); ok {
				live = append(live, in)
			}
		}
	}
	return live
}

// runTorture drives the canonical workload — open, 5 commits, close,
// reopen, 4 commits, checkpoint, 3 commits, checkpoint, 2 commits,
// close — against fsys in dir, tolerating a failure at any point, and
// returns every state that was ever acknowledged.
func runTorture(t *testing.T, dir string, fsys FS, enospc, flip bool) []image {
	t.Helper()
	ts := &tortureState{t: t, enospc: enospc, flip: flip, model: image{}, acked: []image{{}}}
	opts := Options{FS: fsys, RecoveryWorkers: 1}

	st := newTestStore(t)
	l, _, err := Open(dir, st, opts)
	if err != nil {
		return ts.acked // nothing durable could happen
	}
	for i := 0; i < 5; i++ {
		ts.commitOnce(l, st)
	}
	l.Close() //nolint:errcheck // a latched log reports its failure here

	st = newTestStore(t)
	l, _, err = Open(dir, st, opts)
	if err != nil {
		return ts.acked
	}
	ts.failed = false // a fresh log instance may serve again
	got := storeImage(st)
	if flip {
		// A flipped acknowledged record is CRC-truncated on reopen along
		// with everything after it; rebase on what actually survived.
		ts.model = got
		ts.acked = append(ts.acked, ts.model.clone())
	} else if !reflect.DeepEqual(got, ts.model) {
		t.Fatalf("mid-run reopen lost acknowledged state:\n got %v\nwant %v", got, ts.model)
	}
	ts.live = rebuildLive(st)

	for i := 0; i < 4; i++ {
		ts.commitOnce(l, st)
	}
	l.Checkpoint() //nolint:errcheck // checkpoint failure must not hurt durability
	for i := 0; i < 3; i++ {
		ts.commitOnce(l, st)
	}
	l.Checkpoint() //nolint:errcheck
	for i := 0; i < 2; i++ {
		ts.commitOnce(l, st)
	}
	l.Close() //nolint:errcheck
	return ts.acked
}

// verifyTorture reopens dir on a healthy disk and checks recovery
// against the acknowledged states.
func verifyTorture(t *testing.T, dir string, acked []image, flip bool) {
	t.Helper()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{RecoveryWorkers: 1})
	if err != nil {
		if flip {
			return // detected silent corruption; a clean refusal is valid
		}
		t.Fatalf("clean reopen failed: %v", err)
	}
	defer l.Close()
	got := storeImage(st)
	if flip {
		for _, im := range acked {
			if reflect.DeepEqual(got, im) {
				return
			}
		}
		t.Fatalf("recovered image matches no acknowledged state:\n%v", got)
	}
	if want := acked[len(acked)-1]; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered image diverges from acknowledged state:\n got %v\nwant %v", got, want)
	}
}

// tortureReference runs the workload fault-free and returns the op
// count and per-op kinds the walks iterate over.
func tortureReference(t *testing.T) (int64, []OpKind) {
	t.Helper()
	dir := t.TempDir()
	ref := NewFaultFS(nil, FaultPlan{FailAt: -1})
	acked := runTorture(t, dir, ref, false, false)
	verifyTorture(t, dir, acked, false)
	if want := 1 + 5 + 4 + 3 + 2; len(acked) != want {
		t.Fatalf("reference run acknowledged %d states, want %d", len(acked), want)
	}
	n, trace := ref.Ops(), ref.Trace()
	writes, syncs := 0, 0
	for _, k := range trace {
		switch k {
		case KindWrite:
			writes++
		case KindSync:
			syncs++
		}
	}
	if n < 20 || writes < 10 || syncs < 10 {
		t.Fatalf("reference trace implausibly small: %d ops, %d writes, %d syncs", n, writes, syncs)
	}
	return n, trace
}

// TestTortureErrAtEveryOp fails each of the N filesystem operations the
// workload issues, once, with a clean I/O error.
func TestTortureErrAtEveryOp(t *testing.T) {
	n, _ := tortureReference(t)
	for i := int64(0); i < n; i++ {
		t.Run(fmt.Sprintf("op%03d", i), func(t *testing.T) {
			dir := t.TempDir()
			acked := runTorture(t, dir, NewFaultFS(nil, FaultPlan{FailAt: i, Class: FaultErr}), false, false)
			verifyTorture(t, dir, acked, false)
		})
	}
}

// TestTortureENOSPCAtEveryOp fills the disk at each op index: the
// targeted op and every write after it fail with ENOSPC. Commit
// failures must classify as ErrDiskFull.
func TestTortureENOSPCAtEveryOp(t *testing.T) {
	n, _ := tortureReference(t)
	for i := int64(0); i < n; i++ {
		t.Run(fmt.Sprintf("op%03d", i), func(t *testing.T) {
			dir := t.TempDir()
			acked := runTorture(t, dir, NewFaultFS(nil, FaultPlan{FailAt: i, Class: FaultENOSPC, Persist: true}), true, false)
			verifyTorture(t, dir, acked, false)
		})
	}
}

// TestTortureShortWriteAtEveryWrite makes each write op persist only
// half its buffer and report a short count.
func TestTortureShortWriteAtEveryWrite(t *testing.T) {
	_, trace := tortureReference(t)
	ran := 0
	for i, k := range trace {
		if k != KindWrite {
			continue
		}
		ran++
		t.Run(fmt.Sprintf("op%03d", i), func(t *testing.T) {
			dir := t.TempDir()
			acked := runTorture(t, dir, NewFaultFS(nil, FaultPlan{FailAt: int64(i), Class: FaultShortWrite}), false, false)
			verifyTorture(t, dir, acked, false)
		})
	}
	if ran == 0 {
		t.Fatal("no write ops in reference trace")
	}
}

// TestTortureTornWriteAtEveryWrite makes each write op persist a prefix
// while reporting total failure — the classic torn sector.
func TestTortureTornWriteAtEveryWrite(t *testing.T) {
	_, trace := tortureReference(t)
	for i, k := range trace {
		if k != KindWrite {
			continue
		}
		t.Run(fmt.Sprintf("op%03d", i), func(t *testing.T) {
			dir := t.TempDir()
			acked := runTorture(t, dir, NewFaultFS(nil, FaultPlan{FailAt: int64(i), Class: FaultTornWrite}), false, false)
			verifyTorture(t, dir, acked, false)
		})
	}
}

// TestTortureBitFlipAtEverySync corrupts the last written byte right
// after each fsync reports success — firmware that lies. Acknowledged
// commits may be lost (their CRC now fails) but recovery must land on a
// previously acknowledged state or refuse cleanly.
func TestTortureBitFlipAtEverySync(t *testing.T) {
	_, trace := tortureReference(t)
	ran := 0
	for i, k := range trace {
		if k != KindSync {
			continue
		}
		ran++
		t.Run(fmt.Sprintf("op%03d", i), func(t *testing.T) {
			dir := t.TempDir()
			acked := runTorture(t, dir, NewFaultFS(nil, FaultPlan{FailAt: int64(i), Class: FaultBitFlip}), false, true)
			verifyTorture(t, dir, acked, true)
		})
	}
	if ran == 0 {
		t.Fatal("no sync ops in reference trace")
	}
}

// TestTortureCheckpointCorruptPrimaryFallsBack damages the primary
// checkpoint after a run that took two: recovery must fall back to
// checkpoint.prev plus the retained segment generation and reproduce
// the full acknowledged state, reporting the fallback.
func TestTortureCheckpointCorruptPrimaryFallsBack(t *testing.T) {
	for _, mode := range []string{"bitflip", "truncate"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			acked := runTorture(t, dir, nil, false, false)
			path := filepath.Join(dir, checkpointName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if mode == "bitflip" {
				data[len(data)/2] ^= 0xFF
			} else {
				data = data[:len(data)/3]
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			st := newTestStore(t)
			l, info, err := Open(dir, st, Options{RecoveryWorkers: 1})
			if err != nil {
				t.Fatalf("fallback open failed: %v", err)
			}
			defer l.Close()
			if !info.CheckpointFallback {
				t.Fatalf("expected CheckpointFallback, got %+v", info)
			}
			if got, want := storeImage(st), acked[len(acked)-1]; !reflect.DeepEqual(got, want) {
				t.Fatalf("fallback recovered\n%v\nwant\n%v", got, want)
			}
		})
	}
}

// TestTortureFirstCheckpointCorruptFullReplay: before a second
// checkpoint exists there is no checkpoint.prev, but the first
// checkpoint also deleted no segments — a corrupt primary must degrade
// to a full log replay, not an error.
func TestTortureFirstCheckpointCorruptFullReplay(t *testing.T) {
	dir := t.TempDir()
	ts := &tortureState{t: t, model: image{}, acked: []image{{}}}
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{RecoveryWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ts.commitOnce(l, st)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ts.commitOnce(l, st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointPrev)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("first checkpoint should leave no checkpoint.prev (err=%v)", err)
	}
	path := filepath.Join(dir, checkpointName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01 // inside the CRC trailer
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := newTestStore(t)
	l2, info, err := Open(dir, st2, Options{RecoveryWorkers: 1})
	if err != nil {
		t.Fatalf("full-replay fallback failed: %v", err)
	}
	defer l2.Close()
	if !info.CheckpointFallback {
		t.Fatalf("expected CheckpointFallback, got %+v", info)
	}
	if got, want := storeImage(st2), ts.model; !reflect.DeepEqual(got, want) {
		t.Fatalf("full replay recovered\n%v\nwant\n%v", got, want)
	}
}

// TestTortureBothCheckpointsCorrupt: with primary and prev both
// damaged, recovery must refuse with a clean typed error — the segment
// tail below prev's base is gone, so inventing state is not an option.
func TestTortureBothCheckpointsCorrupt(t *testing.T) {
	dir := t.TempDir()
	runTorture(t, dir, nil, false, false)
	for _, name := range []string{checkpointName, checkpointPrev} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st := newTestStore(t)
	_, _, err := Open(dir, st, Options{RecoveryWorkers: 1})
	if err == nil {
		t.Fatal("open succeeded over two corrupt checkpoints")
	}
	if !errors.Is(err, errCheckpointCorrupt) {
		t.Fatalf("error not typed errCheckpointCorrupt: %v", err)
	}
}

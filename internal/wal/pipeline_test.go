package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

// hardenTracker is a VFS that observes the ack-vs-harden window: it
// passes everything through to the real filesystem and records how many
// bytes of the live segment were on "disk" after each segment fsync. In
// the crash model, a crash preserves at least the hardened prefix (and
// some arbitrary prefix of later written bytes, which the
// kill-at-every-byte suite covers).
type hardenTracker struct {
	osFS
	mu       sync.Mutex
	hardened int64
	syncs    int
}

func (h *hardenTracker) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := h.osFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	var seq uint64
	if n, _ := fmt.Sscanf(filepath.Base(name), "wal-%d.log", &seq); n == 1 {
		return &trackedFile{File: f, h: h}, nil
	}
	return f, nil
}

// trackedFile snapshots the segment size after every successful fsync.
type trackedFile struct {
	File
	h *hardenTracker
}

func (f *trackedFile) Sync() error {
	if err := f.File.Sync(); err != nil {
		return err
	}
	fi, err := f.File.Stat()
	if err != nil {
		return err
	}
	f.h.mu.Lock()
	f.h.hardened = fi.Size()
	f.h.syncs++
	f.h.mu.Unlock()
	return nil
}

func (h *hardenTracker) state() (int64, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hardened, h.syncs
}

// The tentpole's crash-window acceptance, SyncAlways leg: a pipelined
// transaction whose durability future resolved must survive a crash at
// EVERY later point. The tracker records the hardened prefix at each
// fsync; at every future resolution the test captures that prefix, and
// afterwards recovers from exactly those bytes — the worst crash point,
// immediately after the application acted on the resolution — checking
// the transaction's effect is present.
func TestRecoveryPipelinedCrashWindow(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	tracker := &hardenTracker{}
	l, _, err := Open(dir, st, Options{FS: tracker})
	if err != nil {
		t.Fatal(err)
	}
	cls := st.Schema().Class("item")
	const workers = 4
	const commitsEach = 40
	insts := make([]*storage.Instance, workers)
	c := l.BeginCommit(1, 0)
	for i := range insts {
		in, err := st.NewInstance(cls, storage.IntV(0))
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = in
		c.Create(cls.ID, uint64(in.OID), in)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	// resolution is one observed (commit value, hardened-at-resolution)
	// pair per pipelined commit.
	type resolution struct {
		worker   int
		value    int64
		hardened int64
	}
	resCh := make(chan resolution, workers*commitsEach)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := insts[w]
			var futures []*Future
			var values []int64
			for i := 1; i <= commitsEach; i++ {
				in.Set(0, storage.IntV(int64(i)))
				c := l.BeginCommit(uint64(100 + w*1000 + i), 0)
				c.Write(uint64(in.OID), 0, in.Get(0))
				fut, err := c.CommitPipelined()
				if err != nil {
					errs <- fmt.Errorf("worker %d commit %d: %w", w, i, err)
					return
				}
				futures = append(futures, fut)
				values = append(values, int64(i))
				// Keep a small pipeline: resolve the oldest future once
				// a few are in flight, like a session would.
				if len(futures) >= 8 {
					if err := futures[0].Wait(); err != nil {
						errs <- err
						return
					}
					hardened, _ := tracker.state()
					resCh <- resolution{worker: w, value: values[0], hardened: hardened}
					futures, values = futures[1:], values[1:]
				}
			}
			for k, fut := range futures {
				if err := fut.Wait(); err != nil {
					errs <- err
					return
				}
				hardened, _ := tracker.state()
				resCh <- resolution{worker: w, value: values[k], hardened: hardened}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(resCh)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}

	for res := range resCh {
		if res.hardened > int64(len(data)) {
			t.Fatalf("hardened %d beyond segment size %d", res.hardened, len(data))
		}
		crashDir := t.TempDir()
		if err := os.WriteFile(segmentPath(crashDir, 1), data[:res.hardened], 0o644); err != nil {
			t.Fatal(err)
		}
		_, st2, _ := openDirNoLog(t, crashDir)
		in, ok := st2.Get(insts[res.worker].OID)
		if !ok {
			t.Fatalf("worker %d instance missing after crash at hardened=%d", res.worker, res.hardened)
		}
		if got := in.Get(0).I; got < res.value {
			t.Fatalf("worker %d: resolved commit value %d lost (recovered %d) at hardened=%d",
				res.worker, res.value, got, res.hardened)
		}
	}
}

// openDirNoLog recovers a directory and immediately closes the log,
// returning the recovered store (crash-simulation helper).
func openDirNoLog(t *testing.T, dir string) (*Log, *storage.Store, RecoveryInfo) {
	t.Helper()
	l, st, info := openDir(t, dir)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return l, st, info
}

// SyncEvery leg of the crash-window acceptance: commits are
// acknowledged before the fsync, and the loss window is bounded — any
// unsynced commit is hardened within the interval (plus scheduling
// slack), even with no further commits arriving to piggyback on.
func TestRecoverySyncEveryBoundsLossWindow(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	tracker := &hardenTracker{}
	const interval = 40 * time.Millisecond
	l, _, err := Open(dir, st, Options{Sync: SyncEvery(interval), FS: tracker})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cls := st.Schema().Class("item")
	in, err := st.NewInstance(cls, storage.IntV(7))
	if err != nil {
		t.Fatal(err)
	}
	c := l.BeginCommit(1, 0)
	c.Create(cls.ID, uint64(in.OID), in)
	start := time.Now()
	if err := c.Commit(); err != nil { // acknowledged after the OS write
		t.Fatal(err)
	}
	fi, err := os.Stat(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := fi.Size()
	deadline := time.Now().Add(10 * interval)
	for {
		hardened, _ := tracker.state()
		if hardened >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("commit not hardened within 10× the %s interval (hardened %d of %d)",
				interval, hardened, want)
		}
		time.Sleep(time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 9*interval {
		t.Fatalf("idle hardening took %s, want ≲ %s", elapsed, interval)
	}
}

// Under SyncNever, no batch fsyncs happen at all; the Sync barrier
// hardens everything enqueued so far on demand, and resolves after
// outstanding pipelined futures' records are on disk.
func TestSyncBarrierHardensRelaxedLog(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	tracker := &hardenTracker{}
	l, _, err := Open(dir, st, Options{Sync: SyncNever, FS: tracker})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cls := st.Schema().Class("item")
	in, err := st.NewInstance(cls, storage.IntV(1))
	if err != nil {
		t.Fatal(err)
	}
	c := l.BeginCommit(1, 0)
	c.Create(cls.ID, uint64(in.OID), in)
	fut, err := c.CommitPipelined()
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, syncs := tracker.state(); syncs != 0 {
		t.Fatalf("SyncNever fsynced %d times before the barrier", syncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	hardened, syncs := tracker.state()
	if syncs == 0 || hardened < fi.Size() {
		t.Fatalf("barrier left %d of %d bytes unhardened (%d syncs)", fi.Size()-hardened, fi.Size(), syncs)
	}
	if l.Stats().Fsyncs == 0 {
		t.Fatal("Stats.Fsyncs did not count the barrier sync")
	}
}

// Outstanding pipelined futures resolve when the log closes: Close
// drains the queue, and every record it acknowledged recovers.
func TestRecoveryPipelinedFuturesResolveOnClose(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cls := st.Schema().Class("item")
	in, err := st.NewInstance(cls, storage.IntV(0))
	if err != nil {
		t.Fatal(err)
	}
	c := l.BeginCommit(1, 0)
	c.Create(cls.ID, uint64(in.OID), in)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	const commits = 100
	futures := make([]*Future, 0, commits)
	for i := 1; i <= commits; i++ {
		in.Set(0, storage.IntV(int64(i)))
		c := l.BeginCommit(uint64(1 + i), 0)
		c.Write(uint64(in.OID), 0, in.Get(0))
		fut, err := c.CommitPipelined()
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, fut)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i, fut := range futures {
		if err := fut.Wait(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	_, st2, info := openDirNoLog(t, dir)
	if info.Records != commits+1 {
		t.Fatalf("recovered %d records, want %d", info.Records, commits+1)
	}
	rec, ok := st2.Get(in.OID)
	if !ok || rec.Get(0) != storage.IntV(commits) {
		t.Fatalf("final value %v, want %d", rec.Get(0), commits)
	}
}

// Pipelined commits after Close fail synchronously with ErrClosed.
func TestPipelinedCommitAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	c := l.BeginCommit(1, 0)
	c.Delete(42)
	if _, err := c.CommitPipelined(); err != ErrClosed {
		t.Fatalf("pipelined commit after close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("sync after close = %v, want ErrClosed", err)
	}
}

// bigWorkload drives enough single-op commits through a fresh log to
// cross the parallel-replay threshold: creates, interleaved writes and
// some deletes across the OID space.
func bigWorkload(t *testing.T, dir string, n int) {
	t.Helper()
	st := newTestStore(t)
	l, _, err := Open(dir, st, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	cls := st.Schema().Class("item")
	var oids []storage.OID
	for i := 0; i < n; i++ {
		switch {
		case i%7 == 3 && len(oids) > 4: // delete an earlier instance
			victim := oids[i%len(oids)]
			if victim != 0 {
				if _, err := st.Delete(victim); err == nil {
					c := l.BeginCommit(uint64(i), 0)
					c.Delete(uint64(victim))
					if err := c.Commit(); err != nil {
						t.Fatal(err)
					}
					oids[i%len(oids)] = 0
				}
			}
		case i%3 == 0 || len(oids) == 0: // create
			in, err := st.NewInstance(cls, storage.IntV(int64(i)), storage.IntV(0),
				storage.StrV(fmt.Sprintf("s%d", i)), storage.BoolV(i%2 == 0), storage.RefV(0))
			if err != nil {
				t.Fatal(err)
			}
			oids = append(oids, in.OID)
			c := l.BeginCommit(uint64(i), 0)
			c.Create(cls.ID, uint64(in.OID), in)
			if err := c.Commit(); err != nil {
				t.Fatal(err)
			}
		default: // write to a random live instance
			target := oids[(i*2654435761)%len(oids)]
			if target == 0 {
				continue
			}
			in, ok := st.Get(target)
			if !ok {
				continue
			}
			in.Set(1, storage.IntV(int64(i)))
			c := l.BeginCommit(uint64(i), 0)
			c.Write(uint64(target), 1, in.Get(1))
			if err := c.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// Parallel replay must produce byte-identical state to single-threaded
// replay — same instances, same slots, same extent order (both are
// normalized to ascending OIDs), same OID watermark.
func TestRecoveryParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	oldMin := minParallelReplayOps
	minParallelReplayOps = 1 // force the parallel path at test scale
	defer func() { minParallelReplayOps = oldMin }()
	bigWorkload(t, dir, 3000)

	recover := func(workers int) (*storage.Store, RecoveryInfo) {
		st := newTestStore(t)
		l, info, err := Open(dir, st, Options{RecoveryWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return st, info
	}
	stSeq, infoSeq := recover(1)
	for _, workers := range []int{2, 4, 8} {
		stPar, infoPar := recover(workers)
		if infoPar.Records != infoSeq.Records {
			t.Fatalf("workers=%d replayed %d records, sequential %d", workers, infoPar.Records, infoSeq.Records)
		}
		if infoPar.Workers != workers {
			t.Fatalf("RecoveryInfo.Workers = %d, want %d", infoPar.Workers, workers)
		}
		if got, want := storeImage(stPar), storeImage(stSeq); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel replay diverged from sequential", workers)
		}
		if stPar.MaxOID() != stSeq.MaxOID() {
			t.Fatalf("workers=%d: MaxOID %d vs %d", workers, stPar.MaxOID(), stSeq.MaxOID())
		}
		// Extent order is part of the contract (deterministic merge).
		for _, cls := range stSeq.Schema().Order {
			if !reflect.DeepEqual(stPar.ExtentOf(cls), stSeq.ExtentOf(cls)) {
				t.Fatalf("workers=%d: extent order of %s diverged", workers, cls.Name)
			}
		}
	}
}

// The parallel path honors torn tails exactly like the sequential one.
func TestRecoveryParallelTornTail(t *testing.T) {
	dir := t.TempDir()
	oldMin := minParallelReplayOps
	minParallelReplayOps = 1
	defer func() { minParallelReplayOps = oldMin }()
	bigWorkload(t, dir, 400)
	data, err := os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(len(data)) - 5 // tear mid-record
	crashDir := t.TempDir()
	if err := os.WriteFile(segmentPath(crashDir, 1), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t)
	l, info, err := Open(crashDir, st, Options{RecoveryWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if info.TornTailBytes == 0 {
		t.Fatal("parallel recovery missed the torn tail")
	}
	// Reference: sequential recovery of the same bytes.
	seqDir := t.TempDir()
	if err := os.WriteFile(segmentPath(seqDir, 1), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := newTestStore(t)
	l2, info2, err := Open(seqDir, st2, Options{RecoveryWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Records != info2.Records || info.TornTailBytes != info2.TornTailBytes {
		t.Fatalf("parallel %+v vs sequential %+v", info, info2)
	}
	if !reflect.DeepEqual(storeImage(st), storeImage(st2)) {
		t.Fatal("parallel torn-tail recovery diverged from sequential")
	}
}

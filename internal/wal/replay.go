package wal

// Parallel recovery. Replay is embarrassingly parallel across
// instances: two ops touching different OIDs commute (creates and
// deletes maintain disjoint extent entries under the per-class extent
// latch, writes land on disjoint instances), while ops on one OID —
// create, then writes, then perhaps delete — must apply in log order.
// So the replayer scans each segment sequentially (frame validation,
// CRC, torn-tail detection — the cheap part), partitions the ops of its
// valid records by a hash of their OID, and applies the partitions on
// RecoveryWorkers goroutines. Every partition preserves log order for
// the OIDs it owns, which keeps the idempotent-apply rules (skip writes
// to missing instances, overwrite re-created images) byte-identical to
// sequential replay.
//
// The merge is made deterministic by normalization rather than by
// ordering the workers: after the last segment, every class extent is
// sorted by OID (storage.SortExtents), so scan order and checkpoint
// bytes come out the same whether replay ran on one goroutine or
// sixteen — the "deterministic per-extent merge".

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/schema"
	"repro/internal/storage"
)

// minParallelReplayOps is the per-segment op count below which the
// partitioning overhead is not worth paying and replay stays
// sequential. A variable so tests can force the parallel path on small
// deterministic workloads.
var minParallelReplayOps = 4096

// opRef is one op's byte range within the segment being replayed.
type opRef struct {
	off, end int64
}

// replayer applies segments into a store, parallelizing across
// instances when a segment is large enough.
type replayer struct {
	st       *storage.Store
	sch      *schema.Schema
	workers  int
	maxOID   uint64    // replay OID budget; grows with each segment's op count
	maxEpoch uint64    // highest commit epoch seen across all replayed records
	buckets  [][]opRef // per-worker op lists, reused across segments
}

func newReplayer(st *storage.Store, sch *schema.Schema, workers int) *replayer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &replayer{st: st, sch: sch, workers: workers, maxOID: uint64(st.MaxOID())}
}

// oidHash spreads OIDs over workers (splitmix64 finalizer — OIDs are
// sequential, so without mixing every page of instances would land on
// one worker).
func oidHash(oid uint64) uint64 {
	x := oid + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// scanFrames walks the framed records of one segment and returns the
// valid payload ranges, the total op count their headers claim, and
// tornAt: -1 when the whole segment is valid, otherwise the byte offset
// at which the valid prefix ends (an incomplete frame or CRC mismatch —
// the torn tail of a crash).
func scanFrames(data []byte) (payloads []opRef, ops int64, tornAt int64) {
	pos := int64(0)
	for {
		rest := data[pos:]
		if len(rest) == 0 {
			return payloads, ops, -1
		}
		if len(rest) < frameHeaderSize {
			return payloads, ops, pos // torn frame header
		}
		size := binary.LittleEndian.Uint32(rest[0:])
		wantCRC := binary.LittleEndian.Uint32(rest[4:])
		if int64(size) > int64(maxRecordSize) || int64(size) > int64(len(rest)-frameHeaderSize) {
			return payloads, ops, pos // torn or garbage length
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(size)]
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return payloads, ops, pos // torn payload
		}
		if len(payload) >= hdrPayload {
			// Clamp the claimed count to the payload size (every op costs
			// ≥ 2 bytes); walkRecord rejects records that lie higher, and
			// the clamped sum doubles as the replay OID budget.
			claimed := int64(binary.LittleEndian.Uint32(payload[offNumOps:]))
			if claimed > int64(len(payload)) {
				claimed = int64(len(payload))
			}
			ops += claimed
		}
		start := pos + frameHeaderSize
		payloads = append(payloads, opRef{off: start, end: start + int64(size)})
		pos += frameHeaderSize + int64(size)
	}
}

// scanRecordOps validates one payload's record header and walks its ops
// without materializing values, emitting each op's routing OID and byte
// range (relative to the payload). The record's commit epoch is written
// through epoch when non-nil.
func scanRecordOps(payload []byte, epoch *uint64, emit func(oid uint64, off, end int64)) error {
	d := decoder{b: payload}
	if typ := d.u8(); d.err == nil && typ != recCommit {
		return fmt.Errorf("wal: unknown record type %d", typ)
	}
	d.u64() // txnID
	e := d.u64()
	if epoch != nil {
		*epoch = e
	}
	n := d.u32()
	if uint64(n) > uint64(len(payload)) {
		return fmt.Errorf("wal: record claims %d ops in %d bytes", n, len(payload))
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		start := d.pos
		_, oid := d.skipOp()
		if d.err != nil {
			break
		}
		emit(oid, int64(start), int64(d.pos))
	}
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.b) {
		return fmt.Errorf("wal: %d trailing bytes after record", len(d.b)-d.pos)
	}
	return nil
}

// segment replays one segment's bytes into the store. It returns the
// number of commit records applied and tornAt with the same contract as
// scanFrames. Parallel and sequential replay of the same bytes produce
// the same store state (extent order is normalized afterwards by
// SortExtents, which the caller runs once after the final segment).
func (r *replayer) segment(data []byte) (records int, tornAt int64, err error) {
	payloads, ops, tornAt := scanFrames(data)
	// Each claimed op could legitimately be one create, each allocating
	// one sequential OID — so this segment can name OIDs at most that
	// far above what the store has seen.
	r.maxOID += uint64(ops)
	if r.workers <= 1 || ops < int64(minParallelReplayOps) {
		for _, p := range payloads {
			_, epoch, err := applyRecord(r.st, r.sch, data[p.off:p.end], r.maxOID)
			if err != nil {
				return records, tornAt, fmt.Errorf("at offset %d: %w", p.off-frameHeaderSize, err)
			}
			if epoch > r.maxEpoch {
				r.maxEpoch = epoch
			}
			records++
		}
		return records, tornAt, nil
	}

	// Partition: one sequential skip-decode pass routes every op to the
	// worker owning its OID. Log order is preserved inside each bucket.
	if r.buckets == nil {
		r.buckets = make([][]opRef, r.workers)
	}
	for i := range r.buckets {
		r.buckets[i] = r.buckets[i][:0]
	}
	for _, p := range payloads {
		var epoch uint64
		err := scanRecordOps(data[p.off:p.end], &epoch, func(oid uint64, off, end int64) {
			w := oidHash(oid) % uint64(r.workers)
			r.buckets[w] = append(r.buckets[w], opRef{off: p.off + off, end: p.off + end})
		})
		if err != nil {
			return records, tornAt, fmt.Errorf("at offset %d: %w", p.off-frameHeaderSize, err)
		}
		if epoch > r.maxEpoch {
			r.maxEpoch = epoch
		}
		records++
	}

	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		firstErr atomic.Value // error
	)
	for w := 0; w < r.workers; w++ {
		ops := r.buckets[w]
		if len(ops) == 0 {
			continue
		}
		wg.Add(1)
		go func(ops []opRef) {
			defer wg.Done()
			for _, o := range ops {
				if failed.Load() {
					return
				}
				d := decoder{b: data[o.off:o.end]}
				op := decodeOp(&d)
				if d.err != nil {
					// Unreachable after a clean scan, but a worker must
					// never trust that.
					if failed.CompareAndSwap(false, true) {
						firstErr.Store(d.err)
					}
					return
				}
				if err := applyOp(r.st, r.sch, op, r.maxOID); err != nil {
					if failed.CompareAndSwap(false, true) {
						firstErr.Store(fmt.Errorf("at offset %d: %w", o.off, err))
					}
					return
				}
			}
		}(ops)
	}
	wg.Wait()
	if failed.Load() {
		return records, tornAt, firstErr.Load().(error)
	}
	return records, tornAt, nil
}

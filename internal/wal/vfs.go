package wal

import (
	"io"
	"os"
)

// FS abstracts the filesystem under the log: every byte the WAL
// persists — segments, checkpoints, the schema fingerprint, directory
// metadata — moves through one of these methods, so a test can stand a
// fault injector (FaultFS) under the whole durable path and drive it
// through every failure a hostile disk can produce. The default, osFS,
// is a zero-size adapter over package os whose File is *os.File
// directly: the indirection costs one interface call and no
// allocations, keeping the warm commit path 0-alloc.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, hardening creations and renames in it.
	SyncDir(dir string) error
}

// File is the open-file surface the log needs. WriterAt is not used by
// the log itself; it is part of the interface so fault injectors can
// corrupt already-written bytes (post-fsync bit flips) through the same
// abstraction.
type File interface {
	io.Writer
	io.WriterAt
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
	Truncate(size int64) error
}

// osFS is the real filesystem. The zero value is ready to use.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// A nil *os.File inside a non-nil File interface would defeat
		// the caller's nil check.
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// SyncDir fsyncs the directory so file creations and renames survive a
// crash.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

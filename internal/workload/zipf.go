package workload

import "math/rand"

// ZipfPicker draws indexes in [0, n) with a Zipf distribution — the
// classical skewed-access model for database benchmarks: index 0 is the
// hottest object. It wraps math/rand's rejection-inversion sampler with
// the (s, v) parameters fixed to sensible defaults.
type ZipfPicker struct {
	z *rand.Zipf
}

// NewZipfPicker returns a picker over [0, n) with skew s (> 1; larger is
// more skewed; 1.2 is mild, 2 is heavy).
func NewZipfPicker(rng *rand.Rand, n int, s float64) *ZipfPicker {
	if n < 1 {
		n = 1
	}
	if s <= 1 {
		s = 1.2
	}
	return &ZipfPicker{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Pick draws one index.
func (p *ZipfPicker) Pick() int { return int(p.z.Uint64()) }

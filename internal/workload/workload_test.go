package workload

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestGenSchemaCompiles(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		p := DefaultSchemaParams()
		p.Seed = seed
		src := GenSchema(p)
		c, err := core.CompileSource(src)
		if err != nil {
			t.Fatalf("seed %d: generated schema does not compile: %v\n%s", seed, err, src)
		}
		if len(c.Schema.Order) != p.Classes {
			t.Errorf("seed %d: %d classes, want %d", seed, len(c.Schema.Order), p.Classes)
		}
	}
}

func TestGenSchemaMultipleInheritance(t *testing.T) {
	p := DefaultSchemaParams()
	p.MaxParents = 2
	p.Classes = 20
	for seed := int64(1); seed <= 5; seed++ {
		p.Seed = seed
		if _, err := core.CompileSource(GenSchema(p)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenSchemaDeterministic(t *testing.T) {
	p := DefaultSchemaParams()
	if GenSchema(p) != GenSchema(p) {
		t.Error("same seed must give identical source")
	}
	p2 := p
	p2.Seed = 99
	if GenSchema(p) == GenSchema(p2) {
		t.Error("different seeds should differ")
	}
}

func TestGenSchemaHasOverridesAndSuperCalls(t *testing.T) {
	p := DefaultSchemaParams()
	p.Classes = 30
	p.OverrideProb = 0.8
	p.PrefixedProb = 1.0
	src := GenSchema(p)
	if !strings.Contains(src, "redefined as") {
		t.Error("expected overrides in generated schema")
	}
	if !strings.Contains(src, ".op") {
		t.Error("expected prefixed super-calls in generated schema")
	}
}

// Generated programs terminate: run every method of every class once.
func TestGeneratedProgramsTerminate(t *testing.T) {
	p := DefaultSchemaParams()
	p.Classes = 8
	src := GenSchema(p)
	c, err := core.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(c, engine.FineCC{})
	oids, err := Populate(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Execute every callable method of every instance once, directly.
	for _, oid := range oids {
		in, _ := db.Store.Get(oid)
		for _, name := range callableMethods(in) {
			op := Op{OID: oid, Method: name, Arg: 7}
			if err := RunTxn(db, []Op{op}); err != nil {
				t.Fatalf("%s.%s: %v", in.Class.Name, name, err)
			}
		}
	}
	// And through the mix machinery (covers NextTxn + RunTxn together).
	mix, err := NewMix(db, oids, DefaultMixParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := RunTxn(db, mix.NextTxn()); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if db.Snapshot().TopSends == 0 {
		t.Error("no sends executed")
	}
}

func TestPopulate(t *testing.T) {
	c, err := core.CompileSource(GenSchema(DefaultSchemaParams()))
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(c, engine.FineCC{})
	oids, err := Populate(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * len(c.Schema.Order)
	if len(oids) != want || db.Store.Count() != want {
		t.Errorf("populated %d, want %d", len(oids), want)
	}
}

func TestMixDeterministicAndHotSpot(t *testing.T) {
	c, err := core.CompileSource(GenSchema(DefaultSchemaParams()))
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(c, engine.FineCC{})
	oids, err := Populate(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := MixParams{OpsPerTxn: 3, HotSpot: 1.0, HotSet: 1, Seed: 5}
	m1, _ := NewMix(db, oids, p)
	m2, _ := NewMix(db, oids, p)
	for i := 0; i < 10; i++ {
		a, b := m1.NextTxn(), m2.NextTxn()
		if len(a) != len(b) {
			t.Fatal("determinism broken (length)")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("determinism broken at %d/%d", i, j)
			}
			if a[j].OID != oids[0] {
				t.Errorf("HotSpot=1/HotSet=1 must always target the first instance")
			}
		}
	}
}

func TestMixEmptyPopulation(t *testing.T) {
	c, err := core.CompileSource(GenSchema(DefaultSchemaParams()))
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(c, engine.FineCC{})
	if _, err := NewMix(db, nil, DefaultMixParams()); err == nil {
		t.Error("empty population must fail")
	}
}

// Concurrent mixed workload runs to completion under every strategy.
func TestMixUnderAllStrategies(t *testing.T) {
	src := GenSchema(DefaultSchemaParams())
	for _, s := range []engine.Strategy{
		engine.FineCC{}, engine.RWCC{}, engine.RWAnnounceCC{}, engine.FieldCC{}, engine.RelCC{},
	} {
		t.Run(s.Name(), func(t *testing.T) {
			c, err := core.CompileSource(src)
			if err != nil {
				t.Fatal(err)
			}
			db := engine.Open(c, s)
			oids, err := Populate(db, 3)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					p := DefaultMixParams()
					p.Seed = int64(g + 1)
					mix, err := NewMix(db, oids, p)
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < 20; i++ {
						if err := RunTxn(db, mix.NextTxn()); err != nil {
							t.Errorf("%s txn: %v", s.Name(), err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

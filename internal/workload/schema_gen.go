// Package workload generates synthetic schemas and transaction mixes for
// the quantitative experiments: random class hierarchies emitted as mdl
// source (exercising the compiler at scale) and seeded, reproducible
// transaction streams over populated databases (exercising the
// concurrency-control strategies under contention).
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// SchemaParams controls the random schema generator.
type SchemaParams struct {
	Classes         int     // number of classes
	MaxParents      int     // 1 = tree, >1 allows multiple inheritance
	FieldsPerClass  int     // fields added by each class
	MethodsPerClass int     // methods declared by each class
	SelfCallsPerM   int     // self-sends per method body (to lower-ranked methods)
	OverrideProb    float64 // probability a method overrides an inherited one
	PrefixedProb    float64 // probability an override super-calls its parent
	AllowCycles     bool    // permit mutually recursive self-calls (compile-only schemas)
	Seed            int64
}

// DefaultSchemaParams returns a mid-sized, runnable profile.
func DefaultSchemaParams() SchemaParams {
	return SchemaParams{
		Classes:         10,
		MaxParents:      1,
		FieldsPerClass:  4,
		MethodsPerClass: 4,
		SelfCallsPerM:   2,
		OverrideProb:    0.3,
		PrefixedProb:    0.5,
		Seed:            1,
	}
}

// methodRank maps method-pool names to ranks: generated bodies only
// self-call strictly lower ranks, so every generated program terminates
// (unless AllowCycles, for compiler-scaling schemas that never execute).
func methodName(rank int) string { return fmt.Sprintf("op%d", rank) }

// classInfo tracks what is visible in one generated class.
type classInfo struct {
	parents []int
	lin     []int         // C3 linearization (self first)
	fields  []string      // visible fields (inherited + own)
	methods map[int][]int // rank → class indexes having a definition (last = nearest)
}

// c3Merge is the C3 merge over class indexes, mirroring
// internal/schema's linearization so the generator can verify candidate
// parent sets before emitting them. It returns nil when inconsistent.
func c3Merge(seqs [][]int) []int {
	work := make([][]int, 0, len(seqs))
	for _, s := range seqs {
		if len(s) > 0 {
			work = append(work, append([]int(nil), s...))
		}
	}
	var out []int
	for len(work) > 0 {
		head := -1
		for _, s := range work {
			cand := s[0]
			inTail := false
			for _, t := range work {
				for _, x := range t[1:] {
					if x == cand {
						inTail = true
						break
					}
				}
				if inTail {
					break
				}
			}
			if !inTail {
				head = cand
				break
			}
		}
		if head < 0 {
			return nil
		}
		out = append(out, head)
		next := work[:0]
		for _, s := range work {
			if s[0] == head {
				s = s[1:]
			}
			if len(s) > 0 {
				next = append(next, s)
			}
		}
		work = next
	}
	return out
}

// linearizeGen computes L(i) = i · merge(L(P1)…L(Pn), [P1…Pn]), or nil
// when the parent set is C3-inconsistent.
func linearizeGen(infos []classInfo, self int, parents []int) []int {
	seqs := make([][]int, 0, len(parents)+1)
	for _, p := range parents {
		seqs = append(seqs, infos[p].lin)
	}
	if len(parents) > 0 {
		seqs = append(seqs, append([]int(nil), parents...))
	}
	merged := c3Merge(seqs)
	if merged == nil && len(parents) > 0 {
		return nil
	}
	return append([]int{self}, merged...)
}

// GenSchema emits mdl source for a random, valid schema. Classes are
// named k0…kN-1; parents always precede children; every field name is
// globally unique (no shadowing conflicts); method bodies use
// assignments, reads, if-statements and self-sends in the paper's style.
func GenSchema(p SchemaParams) string {
	rng := rand.New(rand.NewSource(p.Seed))
	var sb strings.Builder

	infos := make([]classInfo, p.Classes)
	methodPool := p.MethodsPerClass*p.Classes*2 + 8 // distinct ranks available

	for i := 0; i < p.Classes; i++ {
		ci := classInfo{methods: make(map[int][]int)}

		// Parents among earlier classes, listed most-derived first
		// (descending class index). The generator runs the same C3 merge
		// the schema builder will run and drops parents (most-derived
		// kept) until the linearization is consistent — a single parent
		// always is.
		if i > 0 {
			n := 1
			if p.MaxParents > 1 {
				n = 1 + rng.Intn(p.MaxParents)
			}
			seen := map[int]bool{}
			for j := 0; j < n; j++ {
				par := rng.Intn(i)
				if !seen[par] {
					seen[par] = true
					ci.parents = append(ci.parents, par)
				}
			}
			for a := 1; a < len(ci.parents); a++ {
				for b := a; b > 0 && ci.parents[b] > ci.parents[b-1]; b-- {
					ci.parents[b], ci.parents[b-1] = ci.parents[b-1], ci.parents[b]
				}
			}
			for len(ci.parents) > 1 && linearizeGen(infos, i, ci.parents) == nil {
				ci.parents = ci.parents[:len(ci.parents)-1]
			}
			ci.lin = linearizeGen(infos, i, ci.parents)
			// Inherit fields and methods (first parent wins ties, like C3).
			fieldSeen := map[string]bool{}
			for _, par := range ci.parents {
				for _, f := range infos[par].fields {
					if !fieldSeen[f] {
						fieldSeen[f] = true
						ci.fields = append(ci.fields, f)
					}
				}
				for _, rank := range sortedRanks(infos[par].methods) {
					if _, ok := ci.methods[rank]; !ok {
						ci.methods[rank] = append([]int(nil), infos[par].methods[rank]...)
					}
				}
			}
		}

		if ci.lin == nil {
			ci.lin = []int{i}
		}

		fmt.Fprintf(&sb, "class k%d", i)
		if len(ci.parents) > 0 {
			names := make([]string, len(ci.parents))
			for j, par := range ci.parents {
				names[j] = fmt.Sprintf("k%d", par)
			}
			fmt.Fprintf(&sb, " inherits %s", strings.Join(names, ", "))
		}
		sb.WriteString(" is\n")

		// Own fields: integer fields named k<i>f<j> (globally unique).
		ownFields := make([]string, 0, p.FieldsPerClass)
		if p.FieldsPerClass > 0 {
			sb.WriteString("    instance variables are\n")
			for j := 0; j < p.FieldsPerClass; j++ {
				name := fmt.Sprintf("k%df%d", i, j)
				ownFields = append(ownFields, name)
				fmt.Fprintf(&sb, "        %s : integer\n", name)
			}
		}
		ci.fields = append(ci.fields, ownFields...)

		// Methods: overrides of inherited ranks or fresh ranks.
		declared := map[int]bool{}
		for j := 0; j < p.MethodsPerClass; j++ {
			var rank int
			override := false
			if len(ci.methods) > 0 && rng.Float64() < p.OverrideProb {
				ranks := sortedRanks(ci.methods)
				rank = ranks[rng.Intn(len(ranks))]
				if declared[rank] {
					rank = freshRank(rng, methodPool, declared, ci.methods)
				} else {
					override = true
				}
			} else {
				rank = freshRank(rng, methodPool, declared, ci.methods)
			}
			declared[rank] = true

			fmt.Fprintf(&sb, "    method %s(p1) is", methodName(rank))
			if override {
				sb.WriteString(" redefined as")
			}
			sb.WriteString("\n")
			genBody(&sb, rng, p, ci, rank, override)
			sb.WriteString("    end\n")
			ci.methods[rank] = append(ci.methods[rank], i)
		}
		sb.WriteString("end\n\n")
		infos[i] = ci
	}
	return sb.String()
}

func sortedRanks(m map[int][]int) []int {
	out := make([]int, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func freshRank(rng *rand.Rand, pool int, declared map[int]bool, inherited map[int][]int) int {
	for {
		r := rng.Intn(pool)
		if !declared[r] {
			if _, ok := inherited[r]; !ok {
				return r
			}
		}
	}
}

// genBody writes a method body: a couple of field accesses, optionally a
// super-call (for overrides), and self-sends to callable methods.
func genBody(sb *strings.Builder, rng *rand.Rand, p SchemaParams, ci classInfo, rank int, override bool) {
	// One write and up to two reads over visible fields.
	if len(ci.fields) > 0 {
		w := ci.fields[rng.Intn(len(ci.fields))]
		r1 := ci.fields[rng.Intn(len(ci.fields))]
		fmt.Fprintf(sb, "        %s := expr(%s, p1)\n", w, r1)
		if rng.Intn(2) == 0 {
			r2 := ci.fields[rng.Intn(len(ci.fields))]
			fmt.Fprintf(sb, "        if cond(%s, p1) then\n", r2)
			w2 := ci.fields[rng.Intn(len(ci.fields))]
			fmt.Fprintf(sb, "            %s := expr(%s, p1)\n", w2, w2)
			sb.WriteString("        end\n")
		}
	}
	if override && rng.Float64() < p.PrefixedProb {
		// Super-call the nearest inherited definition.
		chain := ci.methods[rank]
		fmt.Fprintf(sb, "        send k%d.%s(p1) to self\n", chain[len(chain)-1], methodName(rank))
	}
	// Self-sends to callable ranks (sorted for determinism).
	callable := make([]int, 0, len(ci.methods))
	for _, r := range sortedRanks(ci.methods) {
		if r < rank || p.AllowCycles {
			callable = append(callable, r)
		}
	}
	if len(callable) > 0 {
		for j := 0; j < p.SelfCallsPerM; j++ {
			r := callable[rng.Intn(len(callable))]
			fmt.Fprintf(sb, "        send %s(p1) to self\n", methodName(r))
		}
	}
}

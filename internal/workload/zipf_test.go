package workload

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mdl"
)

func TestZipfPickerSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewZipfPicker(rng, 100, 1.5)
	counts := make([]int, 100)
	const draws = 20000
	for i := 0; i < draws; i++ {
		idx := p.Pick()
		if idx < 0 || idx >= 100 {
			t.Fatalf("pick out of range: %d", idx)
		}
		counts[idx]++
	}
	// Strong skew: index 0 must dominate, and the head must hold the
	// majority of mass.
	if counts[0] <= counts[50] {
		t.Errorf("no skew: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	head := counts[0] + counts[1] + counts[2] + counts[3] + counts[4]
	if head*2 < draws {
		t.Errorf("head too light: %d of %d", head, draws)
	}
}

func TestZipfPickerDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewZipfPicker(rng, 1, 0.5) // n clamped to 1, s clamped up
	for i := 0; i < 10; i++ {
		if p.Pick() != 0 {
			t.Fatal("single-element picker must always pick 0")
		}
	}
}

func TestMixWithZipf(t *testing.T) {
	c, err := core.CompileSource(GenSchema(DefaultSchemaParams()))
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(c, engine.FineCC{})
	oids, err := Populate(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := MixParams{OpsPerTxn: 2, Zipf: 1.5, Seed: 3}
	mix, err := NewMix(db, oids, p)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < 500; i++ {
		for _, op := range mix.NextTxn() {
			for idx, oid := range oids {
				if oid == op.OID {
					seen[idx]++
				}
			}
		}
	}
	if seen[0] == 0 {
		t.Error("zipf mix never hit the hottest instance")
	}
	hot, cold := 0, 0
	for idx, n := range seen {
		if idx < len(oids)/10 {
			hot += n
		} else {
			cold += n
		}
	}
	if hot <= cold {
		t.Errorf("zipf mix not skewed: hot=%d cold=%d", hot, cold)
	}
	// Zipf transactions execute fine.
	for i := 0; i < 10; i++ {
		if err := RunTxn(db, mix.NextTxn()); err != nil {
			t.Fatal(err)
		}
	}
}

// Print∘Parse is stable on generated schemas too, not just Figure 1.
func TestGeneratedSchemaRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p := DefaultSchemaParams()
		p.Seed = seed
		p.MaxParents = 2
		src := GenSchema(p)
		f1, err := mdl.ParseFile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		f2, err := mdl.ParseFile(mdl.Print(f1))
		if err != nil {
			t.Fatalf("seed %d reparse: %v", seed, err)
		}
		if !mdl.EqualFiles(f1, f2) {
			t.Errorf("seed %d: round trip unstable", seed)
		}
	}
}

// Larger sweep: 20 seeds with MI and cycles all compile.
func TestGenSchemaManySeeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := SchemaParams{
			Classes: 24, MaxParents: 3, FieldsPerClass: 3,
			MethodsPerClass: 4, SelfCallsPerM: 2,
			OverrideProb: 0.5, PrefixedProb: 0.5, AllowCycles: seed%2 == 0,
			Seed: seed,
		}
		if _, err := core.CompileSource(GenSchema(p)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

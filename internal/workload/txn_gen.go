package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Populate creates perClass instances of every class in the database's
// schema and returns all OIDs, in creation order.
func Populate(db *engine.DB, perClass int) ([]storage.OID, error) {
	var oids []storage.OID
	err := db.RunWithRetry(func(tx *txn.Txn) error {
		for _, cls := range db.Compiled.Schema.Order {
			for i := 0; i < perClass; i++ {
				in, err := db.NewInstance(tx, cls.Name)
				if err != nil {
					return err
				}
				oids = append(oids, in.OID)
			}
		}
		return nil
	})
	return oids, err
}

// MixParams controls a transaction stream.
type MixParams struct {
	OpsPerTxn int     // sends per transaction
	HotSpot   float64 // fraction of operations aimed at the hottest instance(s)
	HotSet    int     // how many instances form the hot set (≥1)
	Zipf      float64 // when > 1, pick instances Zipf-distributed instead of hot-set/uniform
	Seed      int64
}

// DefaultMixParams returns a moderately contended profile.
func DefaultMixParams() MixParams {
	return MixParams{OpsPerTxn: 4, HotSpot: 0.5, HotSet: 2, Seed: 1}
}

// Op is one message send of a generated transaction.
type Op struct {
	OID    storage.OID
	Method string
	Arg    int64
}

// Mix generates reproducible transaction scripts over a population.
// Instances are drawn from a small hot set with probability HotSpot and
// uniformly otherwise; the method is drawn uniformly from the instance's
// METHODS(C) (arity ≤ 1 methods only, which all generated schemas use).
type Mix struct {
	db   *engine.DB
	oids []storage.OID
	p    MixParams
	rng  *rand.Rand
	zipf *ZipfPicker
}

// NewMix builds a generator. The population must be non-empty.
func NewMix(db *engine.DB, oids []storage.OID, p MixParams) (*Mix, error) {
	if len(oids) == 0 {
		return nil, fmt.Errorf("workload: empty population")
	}
	if p.HotSet < 1 {
		p.HotSet = 1
	}
	if p.OpsPerTxn < 1 {
		p.OpsPerTxn = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	m := &Mix{db: db, oids: oids, p: p, rng: rng}
	if p.Zipf > 1 {
		m.zipf = NewZipfPicker(rng, len(oids), p.Zipf)
	}
	return m, nil
}

// NextTxn returns the ops of the next transaction script.
func (m *Mix) NextTxn() []Op {
	ops := make([]Op, 0, m.p.OpsPerTxn)
	for i := 0; i < m.p.OpsPerTxn; i++ {
		var oid storage.OID
		switch {
		case m.zipf != nil:
			oid = m.oids[m.zipf.Pick()]
		case m.rng.Float64() < m.p.HotSpot:
			oid = m.oids[m.rng.Intn(m.p.HotSet)]
		default:
			oid = m.oids[m.rng.Intn(len(m.oids))]
		}
		in, ok := m.db.Store.Get(oid)
		if !ok {
			continue
		}
		methods := callableMethods(in)
		if len(methods) == 0 {
			continue
		}
		ops = append(ops, Op{
			OID:    oid,
			Method: methods[m.rng.Intn(len(methods))],
			Arg:    int64(m.rng.Intn(1000)),
		})
	}
	return ops
}

// callableMethods lists methods of arity 0 or 1 visible on the instance.
func callableMethods(in *storage.Instance) []string {
	var out []string
	for _, name := range in.Class.MethodList {
		if m := in.Class.Resolve(name); m != nil && len(m.Params) <= 1 {
			out = append(out, name)
		}
	}
	return out
}

// RunTxn executes one script transactionally with deadlock retry,
// passing an integer argument to unary methods.
func RunTxn(db *engine.DB, ops []Op) error {
	return db.RunWithRetry(func(tx *txn.Txn) error {
		for _, op := range ops {
			in, ok := db.Store.Get(op.OID)
			if !ok {
				continue
			}
			m := in.Class.Resolve(op.Method)
			if m == nil {
				continue
			}
			var args []engine.Value
			if len(m.Params) == 1 {
				args = []engine.Value{storage.IntV(op.Arg)}
			}
			if _, err := db.Send(tx, op.OID, op.Method, args...); err != nil {
				return err
			}
		}
		return nil
	})
}

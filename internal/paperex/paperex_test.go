package paperex

import "testing"

// The expected-value tables shipped for the tests must themselves be
// internally consistent with the paper's definitions.
func TestTable2Symmetric(t *testing.T) {
	for a, row := range Table2 {
		for b, v := range row {
			if Table2[b][a] != v {
				t.Errorf("Table2 asymmetric at (%s,%s)", a, b)
			}
		}
	}
}

func TestTable2Complete(t *testing.T) {
	methods := []string{"m1", "m2", "m3", "m4"}
	for _, a := range methods {
		row, ok := Table2[a]
		if !ok {
			t.Fatalf("missing row %s", a)
		}
		for _, b := range methods {
			if _, ok := row[b]; !ok {
				t.Errorf("missing cell (%s,%s)", a, b)
			}
		}
	}
}

func TestTable1Symmetric(t *testing.T) {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if Table1[i][j] != Table1[j][i] {
				t.Errorf("Table1 asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestFigure2EdgesUseDeclaredVertices(t *testing.T) {
	verts := make(map[string]bool)
	for _, v := range Figure2Vertices {
		verts[v] = true
	}
	for _, e := range Figure2Edges {
		if !verts[e[0]] || !verts[e[1]] {
			t.Errorf("edge %v references undeclared vertex", e)
		}
	}
}

func TestAVModeNames(t *testing.T) {
	valid := map[string]bool{"Null": true, "Read": true, "Write": true}
	check := func(name string, avs map[string]AV) {
		for key, av := range avs {
			for f, m := range av {
				if !valid[m] {
					t.Errorf("%s[%s]: field %s has bad mode %q", name, key, f, m)
				}
			}
		}
	}
	check("DAVs", DAVs)
	check("TAVsC1", TAVsC1)
	check("TAVsC2", TAVsC2)
}

// The paper's invariant: TAVs of c1 methods are the c2 TAVs restricted
// to c1's fields — for inherited, non-overridden call patterns (m3), and
// m1/m2 agree on the shared fields.
func TestTAVConsistencyAcrossClasses(t *testing.T) {
	for m, c1av := range TAVsC1 {
		c2av, ok := TAVsC2[m]
		if !ok {
			t.Fatalf("method %s missing from c2 TAVs", m)
		}
		for f, mode := range c1av {
			if c2av[f] != mode {
				t.Errorf("%s: field %s is %s in c1 but %s in c2", m, f, mode, c2av[f])
			}
		}
	}
}

// Package paperex holds the paper's running example (Figure 1 of Malta &
// Martinez, ICDE'93) written in mdl, together with every value the paper
// derives from it: the late-binding resolution graph of c2 (Figure 2),
// the direct and transitive access vectors worked through section 4.3,
// and the commutativity relation of class c2 (Table 2). Tests, benches,
// the CLI and the examples all share this single source of truth.
package paperex

// Figure1 is the paper's example hierarchy, transcribed:
//
//   - class c1 with fields f1:integer, f2:boolean, f3:c3 and methods
//     m1 (sends m2 and m3 to self), m2 (writes f1 reading f1,f2),
//     m3 (reads f2 and sends m to the instance referenced by f3);
//   - class c2 inheriting c1, adding f4,f5:integer, f6:string,
//     overriding m2 as an extension (prefixed call to c1.m2, then writes
//     f4 reading f5) and adding m4 (reads f5, writes f6 reading f6);
//   - class c3 with method m (a no-op here; its body is irrelevant to
//     the analysis of c1/c2 because messages to other instances are
//     controlled at their own top level).
const Figure1 = `
-- Figure 1 of Malta & Martinez (ICDE'93): an example of object-oriented
-- programming.  Comments and layout follow the paper.

class c1 is
    instance variables are
        f1 : integer
        f2 : boolean
        f3 : c3
    method m1(p1) is
        send m2(p1) to self
        send m3 to self
    end
    method m2(p1) is
        f1 := expr(f1, f2, p1)
    end
    method m3 is
        if f2 then
            send m to f3
        end
    end
end

class c2 inherits c1 is
    instance variables are
        f4 : integer
        f5 : integer
        f6 : string
    method m2(p1) is redefined as
        send c1.m2(p1) to self
        f4 := expr(f5, p1)
    end
    method m4(p1, p2) is
        if cond(f5, p1) then
            f6 := expr(f6, p2)
        end
    end
end

class c3 is
    instance variables are
        g1 : integer
    method m is
        g1 := g1 + 1
    end
end
`

// Figure2Vertices is the vertex set of the late-binding resolution graph
// of class c2 (Figure 2), in the paper's (class,method) notation.
var Figure2Vertices = []string{
	"(c1,m2)",
	"(c2,m1)",
	"(c2,m2)",
	"(c2,m3)",
	"(c2,m4)",
}

// Figure2Edges is the edge set of Figure 2: m1 self-calls m2 and m3
// (late-bound in c2), and the overriding m2 prefix-calls c1.m2.
var Figure2Edges = [][2]string{
	{"(c2,m1)", "(c2,m2)"},
	{"(c2,m1)", "(c2,m3)"},
	{"(c2,m2)", "(c1,m2)"},
}

// AV is a field-name → mode-name map used to state expected vectors
// readably; tests convert it through the schema to a core.Vector.
type AV map[string]string

// DAVs are the direct access vectors of every method definition, as
// derivable from definition 6 (the paper spells out DAV(c1,m2) in
// section 4.1 and the rest in section 4.3).
var DAVs = map[string]AV{
	"(c1,m1)": {},
	"(c1,m2)": {"f1": "Write", "f2": "Read"},
	"(c1,m3)": {"f2": "Read", "f3": "Read"},
	"(c2,m2)": {"f4": "Write", "f5": "Read"},
	"(c2,m4)": {"f5": "Read", "f6": "Write"},
}

// TAVsC2 are the transitive access vectors of METHODS(c2) on proper
// instances of c2, exactly as worked in section 4.3.
var TAVsC2 = map[string]AV{
	"m1": {"f1": "Write", "f2": "Read", "f3": "Read", "f4": "Write", "f5": "Read"},
	"m2": {"f1": "Write", "f2": "Read", "f4": "Write", "f5": "Read"},
	"m3": {"f2": "Read", "f3": "Read"},
	"m4": {"f5": "Read", "f6": "Write"},
}

// TAVsC1 are the transitive access vectors of METHODS(c1) on proper
// instances of c1 (not spelled out in the paper but fully determined by
// definition 10: in G_c1, m1 → m2, m1 → m3 and no prefixed calls).
var TAVsC1 = map[string]AV{
	"m1": {"f1": "Write", "f2": "Read", "f3": "Read"},
	"m2": {"f1": "Write", "f2": "Read"},
	"m3": {"f2": "Read", "f3": "Read"},
}

// Table2 is the commutativity relation of class c2 exactly as printed in
// the paper (rows and columns in m1..m4 order; true = "yes").
var Table2 = map[string]map[string]bool{
	"m1": {"m1": false, "m2": false, "m3": true, "m4": true},
	"m2": {"m1": false, "m2": false, "m3": true, "m4": true},
	"m3": {"m1": true, "m2": true, "m3": true, "m4": true},
	"m4": {"m1": true, "m2": true, "m3": true, "m4": false},
}

// Table1 is the classical compatibility relation (Table 1) with rows and
// columns in Null, Read, Write order.
var Table1 = [3][3]bool{
	{true, true, true},   // Null
	{true, true, false},  // Read
	{true, false, false}, // Write
}

package serv

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/storage"
	"repro/oodb"
)

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	payload, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	var got Request
	if err := DecodeRequest(payload, &got); err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return &got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpStats},
		{ID: 3, Op: OpTxn, Flags: FlagView, DeadlineMicro: 1500, Cmds: []Cmd{
			{Kind: CmdSend, Ref: -1, OID: 42, Method: "getbalance"},
		}},
		{ID: 1 << 60, Op: OpTxn, Flags: FlagBlocking, Cmds: []Cmd{
			{Kind: CmdNew, Ref: -1, Class: "savings", Args: []storage.Value{
				storage.IntV(7), storage.StrV("alice"), storage.BoolV(true), storage.RefV(9),
			}},
			{Kind: CmdSend, Ref: 0, Method: "deposit", Args: []storage.Value{storage.IntV(-3)}},
			{Kind: CmdDelete, Ref: -1, OID: 12345678901},
			{Kind: CmdDelete, Ref: 0},
			{Kind: CmdScan, Ref: -1, Class: "account", Method: "getbalance", Hier: true,
				Args: []storage.Value{storage.StrV("")}},
		}},
	}
	for i := range reqs {
		got := roundTripRequest(t, &reqs[i])
		want := reqs[i]
		if want.Op != OpTxn {
			// Only ID and Op travel for non-txn ops.
			want = Request{ID: want.ID, Op: want.Op}
		}
		// Decoded empty arg slices come back nil-or-empty; normalize.
		for j := range got.Cmds {
			if len(got.Cmds[j].Args) == 0 {
				got.Cmds[j].Args = nil
			}
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("request %d round trip:\n got %+v\nwant %+v", i, *got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []struct {
		r       Response
		isStats bool
	}{
		{r: Response{ID: 9, Status: oodb.CodeOK, Results: []Result{
			{Kind: CmdSend, Val: storage.IntV(77)},
			{Kind: CmdSend, Val: storage.StrV("x")},
			{Kind: CmdSend, Val: storage.BoolV(true)},
			{Kind: CmdSend, Val: storage.RefV(3)},
			{Kind: CmdNew, OID: 301},
			{Kind: CmdDelete},
			{Kind: CmdScan, Count: 4096},
		}}},
		{r: Response{ID: 10, Status: oodb.CodeDeadlock, Err: "deadlock victim"}},
		{r: Response{ID: 11, Status: oodb.CodeOK, Stats: `{"x":1}`}, isStats: true},
		{r: Response{ID: 12, Status: oodb.CodeOK}},
	}
	for i, tc := range resps {
		payload, err := AppendResponse(nil, &tc.r)
		if err != nil {
			t.Fatalf("AppendResponse(%d): %v", i, err)
		}
		var got Response
		if err := DecodeResponse(payload, &got, tc.isStats); err != nil {
			t.Fatalf("DecodeResponse(%d): %v", i, err)
		}
		want := tc.r
		if len(got.Results) == 0 {
			got.Results = nil
		}
		if len(want.Results) == 0 {
			want.Results = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("response %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var hdr [8]byte
	payloads := [][]byte{{1}, []byte("hello frame"), bytes.Repeat([]byte{0xAB}, 70000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, &hdr, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	br := bufio.NewReader(&buf)
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(br, DefaultMaxFrame, scratch)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		scratch = got
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := func(mutate func([]byte)) error {
		var buf bytes.Buffer
		var hdr [8]byte
		if err := WriteFrame(&buf, &hdr, []byte("payload payload")); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		b := buf.Bytes()
		if mutate != nil {
			mutate(b)
		}
		_, err := ReadFrame(bufio.NewReader(bytes.NewReader(b)), DefaultMaxFrame, nil)
		return err
	}
	if err := frame(nil); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	if err := frame(func(b []byte) { b[10] ^= 0x01 }); !errors.Is(err, ErrBadFrame) {
		t.Errorf("payload bit flip: got %v, want ErrBadFrame", err)
	}
	if err := frame(func(b []byte) { b[4] ^= 0x01 }); !errors.Is(err, ErrBadFrame) {
		t.Errorf("crc bit flip: got %v, want ErrBadFrame", err)
	}
	// A length prefix beyond the frame bound must be rejected before any
	// allocation of that size.
	if err := frame(func(b []byte) {
		binary.LittleEndian.PutUint32(b, 1<<31)
	}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversize length: got %v, want ErrBadFrame", err)
	}
	// Truncation mid-payload is an I/O error, not a hang or panic.
	var buf bytes.Buffer
	var hdr [8]byte
	if err := WriteFrame(&buf, &hdr, []byte("payload payload")); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf.Bytes()[:12])), DefaultMaxFrame, nil)
	if err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestHandshake(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf); err != nil {
		t.Fatal(err)
	}
	good := append([]byte(nil), buf.Bytes()...)
	if err := ReadHandshake(bytes.NewReader(good)); err != nil {
		t.Fatalf("good handshake rejected: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if err := ReadHandshake(bytes.NewReader(bad)); !errors.Is(err, ErrBadHandshake) {
		t.Errorf("bad magic: got %v, want ErrBadHandshake", err)
	}
	ver := append([]byte(nil), good...)
	ver[4] = Version + 1
	if err := ReadHandshake(bytes.NewReader(ver)); !errors.Is(err, ErrBadHandshake) {
		t.Errorf("bad version: got %v, want ErrBadHandshake", err)
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	good, err := AppendRequest(nil, &Request{ID: 1, Op: OpTxn, Cmds: []Cmd{
		{Kind: CmdSend, Ref: -1, OID: 5, Method: "m"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	// Trailing bytes after a well-formed request are a protocol error.
	if err := DecodeRequest(append(good, 0), &req); !errors.Is(err, ErrBadPayload) {
		t.Errorf("trailing byte: got %v, want ErrBadPayload", err)
	}
	// A send referencing a later (or non-New) command must be rejected at
	// decode time, not dereferenced at execution time.
	forward, err := AppendRequest(nil, &Request{ID: 2, Op: OpTxn, Cmds: []Cmd{
		{Kind: CmdSend, Ref: 1, Method: "m"},
		{Kind: CmdNew, Ref: -1, Class: "c"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequest(forward, &req); !errors.Is(err, ErrBadPayload) {
		t.Errorf("forward ref: got %v, want ErrBadPayload", err)
	}
	// Truncations at every prefix length: never panic, never succeed.
	for n := 0; n < len(good); n++ {
		if err := DecodeRequest(good[:n], &req); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
	// Deterministic byte fuzz: random mutations may decode (bytes are
	// cheap to forge) but must never panic.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		b := append([]byte(nil), good...)
		for k := 0; k < 3; k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		_ = DecodeRequest(b, &req) //nolint:errcheck // must-not-panic fuzz
	}
}

func TestValueConversions(t *testing.T) {
	cases := []struct {
		in   any
		want storage.Value
	}{
		{int(3), storage.IntV(3)},
		{int64(-9), storage.IntV(-9)},
		{true, storage.BoolV(true)},
		{"s", storage.StrV("s")},
		{storage.OID(17), storage.RefV(17)},
	}
	for _, c := range cases {
		v, err := GoToValue(c.in)
		if err != nil {
			t.Fatalf("GoToValue(%v): %v", c.in, err)
		}
		if v != c.want {
			t.Errorf("GoToValue(%v) = %+v, want %+v", c.in, v, c.want)
		}
		back := ValueToGo(v)
		if v2, err := GoToValue(back); err != nil || v2 != c.want {
			t.Errorf("ValueToGo(%+v) = %v does not convert back (err %v)", v, back, err)
		}
	}
	if _, err := GoToValue(3.14); err == nil {
		t.Error("GoToValue(float64) accepted")
	}
}

// TestCRCMatchesWAL pins the frame checksum to Castagnoli — the same
// polynomial the WAL uses — so a corrupted frame and a corrupted log
// record fail the same way.
func TestCRCMatchesWAL(t *testing.T) {
	var buf bytes.Buffer
	var hdr [8]byte
	payload := []byte("pin the polynomial")
	if err := WriteFrame(&buf, &hdr, payload); err != nil {
		t.Fatal(err)
	}
	got := binary.LittleEndian.Uint32(buf.Bytes()[4:8])
	want := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	if got != want {
		t.Errorf("frame crc %#x, want Castagnoli %#x", got, want)
	}
}

package serv

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/oodb"
)

// Config tunes a Server beyond its listener.
type Config struct {
	// MaxFrame bounds request payloads (0: DefaultMaxFrame).
	MaxFrame int
	// Logf, when non-nil, receives connection-level diagnostics
	// (handshake failures, protocol errors). The data path never logs.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the server's cumulative counters.
type Stats struct {
	SessionsTotal int64 // connections accepted over the server's lifetime
	ConnsActive   int64 // sessions currently open
	Inflight      int64 // requests read but not yet responded to
	Requests      int64 // requests executed, by op
	Txns          int64 // OpTxn updates (pipelined + blocking)
	Views         int64 // OpTxn views
	Errors        int64 // requests answered with a non-OK status
}

// Server owns a listener and its sessions. One Server serves one
// Database; sessions share the engine directly, so a group-commit
// fsync amortizes across every connection with a commit in flight.
type Server struct {
	db  *oodb.Database
	ln  net.Listener
	cfg Config

	mu       sync.Mutex
	sessions map[*session]struct{}
	closing  atomic.Bool
	acceptWG sync.WaitGroup
	sessWG   sync.WaitGroup

	sessionsTotal atomic.Int64
	connsActive   atomic.Int64
	inflight      atomic.Int64
	requests      atomic.Int64
	txns          atomic.Int64
	views         atomic.Int64
	errorsTotal   atomic.Int64

	// Request-latency histograms per command type, registered on the
	// database's obs registry (nil under NoMetrics). For pipelined
	// transactions the txn histogram measures through sequencing (the
	// client-visible dequeue-to-ack path adds the durability wait).
	histTxn  histRecorder
	histView histRecorder
	histPing histRecorder
}

// histRecorder is an obs.Hist that may be absent (NoMetrics).
type histRecorder struct {
	h interface{ Record(time.Duration) }
}

func (hr histRecorder) record(d time.Duration) {
	if hr.h != nil {
		hr.h.Record(d)
	}
}

// Listen starts serving db on the given network address ("tcp",
// "unix") and returns once the listener is bound. Close performs a
// graceful drain.
func Listen(db *oodb.Database, network, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return Serve(db, ln, cfg), nil
}

// Serve starts serving db on an already-bound listener.
func Serve(db *oodb.Database, ln net.Listener, cfg Config) *Server {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	s := &Server{db: db, ln: ln, cfg: cfg, sessions: make(map[*session]struct{})}
	s.registerMetrics()
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s
}

// registerMetrics surfaces the serving layer through the database's
// observability registry: conn/session/inflight gauges and per-command
// latency histograms, alongside the engine's own series.
func (s *Server) registerMetrics() {
	reg := s.db.Metrics()
	if reg == nil {
		return
	}
	reg.GaugeFunc("favserv_conns_active", "open client sessions", "", s.connsActive.Load)
	reg.GaugeFunc("favserv_inflight_requests", "requests read but not yet responded to", "", s.inflight.Load)
	reg.CounterFunc("favserv_sessions_total", "client sessions accepted", "", s.sessionsTotal.Load)
	reg.CounterFunc("favserv_requests_total", "requests executed", "", s.requests.Load)
	reg.CounterFunc("favserv_request_errors_total", "requests answered non-OK", "", s.errorsTotal.Load)
	help := "server-side request latency (txn: through commit sequencing)"
	s.histTxn.h = reg.Histogram("favserv_request_seconds", help, obs.Labels("op", "txn"), true)
	s.histView.h = reg.Histogram("favserv_request_seconds", help, obs.Labels("op", "view"), true)
	s.histPing.h = reg.Histogram("favserv_request_seconds", help, obs.Labels("op", "ping"), true)
}

// Addr returns the bound listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		SessionsTotal: s.sessionsTotal.Load(),
		ConnsActive:   s.connsActive.Load(),
		Inflight:      s.inflight.Load(),
		Requests:      s.requests.Load(),
		Txns:          s.txns.Load(),
		Views:         s.views.Load(),
		Errors:        s.errorsTotal.Load(),
	}
}

// Close drains gracefully: stop accepting, unblock every session's
// reader, finish executing and answering everything already received,
// then close the connections. It does not close the database — callers
// sequence `srv.Close(); db.Close()` so acked commits are flushed by
// the database's own close.
func (s *Server) Close() error {
	if !s.closing.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	s.acceptWG.Wait()
	s.mu.Lock()
	for sess := range s.sessions {
		// Cut the blocking read; anything already read keeps executing.
		sess.conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.sessWG.Wait()
	return err
}

// Abort closes the listener and every connection immediately, without
// draining. Crash-simulation tests use it; production uses Close.
func (s *Server) Abort() {
	s.closing.Store(true)
	s.ln.Close()
	s.acceptWG.Wait()
	s.mu.Lock()
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.sessWG.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.closing.Load() {
				s.logf("serv: accept: %v", err)
			}
			return
		}
		if s.closing.Load() {
			conn.Close()
			return
		}
		sess := &session{
			srv:  s,
			conn: conn,
			out:  make(chan *pending, pipelineDepth),
		}
		s.mu.Lock()
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.sessionsTotal.Add(1)
		s.connsActive.Add(1)
		s.sessWG.Add(2)
		go sess.readLoop()
		go sess.writeLoop()
	}
}

// pipelineDepth bounds responses queued between a session's reader and
// writer. Past it the reader stops consuming requests — natural
// backpressure on a client that pipelines faster than fsync drains.
const pipelineDepth = 256

// pending is one request's response en route to the writer: the
// already-encoded success payload and, for pipelined commits, the
// durability future the writer must resolve before the bytes may be
// acked to the client.
type pending struct {
	buf    []byte
	id     uint64
	fut    oodb.Future
	hasFut bool
}

// session is one client connection: a reader goroutine that decodes and
// executes requests in arrival order, and a writer goroutine that
// resolves durability futures and writes responses in the same order.
type session struct {
	srv  *Server
	conn net.Conn
	out  chan *pending
}

func (sess *session) readLoop() {
	s := sess.srv
	defer func() {
		close(sess.out)
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.sessWG.Done()
	}()
	if err := ReadHandshake(sess.conn); err != nil {
		s.logf("serv: %v", err)
		return
	}
	if err := WriteHandshake(sess.conn); err != nil {
		return
	}
	br := bufio.NewReaderSize(sess.conn, 64<<10)
	var (
		req  Request
		buf  []byte
		err  error
		oids []oodb.OID // per-batch CmdNew results for target references
	)
	for {
		buf, err = ReadFrame(br, s.cfg.MaxFrame, buf)
		if err != nil {
			if !s.closing.Load() && !isConnClosed(err) {
				s.logf("serv: read: %v", err)
			}
			return
		}
		if err := DecodeRequest(buf, &req); err != nil {
			s.logf("serv: %v", err)
			return
		}
		s.inflight.Add(1)
		p := &pending{id: req.ID}
		oids = sess.execute(&req, p, oids)
		sess.out <- p
	}
}

func (sess *session) writeLoop() {
	s := sess.srv
	defer s.sessWG.Done()
	bw := bufio.NewWriterSize(sess.conn, 64<<10)
	var hdr [frameHeaderSize]byte
	for p := range sess.out {
		if p.hasFut {
			if err := p.fut.Wait(); err != nil {
				// The commit was acked by the engine but the log went
				// fail-stop before hardening it: the client must not
				// take the response as durable.
				p.buf = appendErrResponse(p.buf[:0], p.id, err)
			}
		}
		if err := WriteFrame(bw, &hdr, p.buf); err != nil {
			sess.drainPendings()
			s.connsActive.Add(-1)
			sess.conn.Close()
			return
		}
		s.inflight.Add(-1)
		if len(sess.out) == 0 {
			if err := bw.Flush(); err != nil {
				sess.drainPendings()
				s.connsActive.Add(-1)
				sess.conn.Close()
				return
			}
		}
	}
	bw.Flush()
	s.connsActive.Add(-1)
	sess.conn.Close()
}

// drainPendings consumes the rest of the out queue after a write
// failure, resolving futures so pooled commit tickets recycle.
func (sess *session) drainPendings() {
	for p := range sess.out {
		if p.hasFut {
			p.fut.Wait()
		}
		sess.srv.inflight.Add(-1)
	}
}

func isConnClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// appendErrResponse encodes a failure response carrying the error's
// taxonomy code, so the client reconstructs an error satisfying the
// same oodb.Is* predicates.
func appendErrResponse(b []byte, id uint64, err error) []byte {
	resp := Response{ID: id, Status: oodb.ErrorCode(err), Err: err.Error()}
	if resp.Status == oodb.CodeOK {
		resp.Status = oodb.CodeOther
	}
	b, _ = AppendResponse(b, &resp)
	return b
}

// execute runs one decoded request and leaves the encoded response (or
// the pipelined future plus pre-encoded success response) on p. It
// returns the oids scratch for reuse.
func (sess *session) execute(req *Request, p *pending, oids []oodb.OID) []oodb.OID {
	s := sess.srv
	start := time.Now()
	s.requests.Add(1)
	switch req.Op {
	case OpPing:
		p.buf, _ = AppendResponse(p.buf[:0], &Response{ID: req.ID})
		s.histPing.record(time.Since(start))
		return oids
	case OpStats:
		js, err := json.Marshal(s.Stats())
		if err != nil {
			p.buf = appendErrResponse(p.buf[:0], req.ID, err)
			s.errorsTotal.Add(1)
			return oids
		}
		p.buf, _ = AppendResponse(p.buf[:0], &Response{ID: req.ID, Stats: string(js)})
		return oids
	case OpTxn:
	default:
		s.errorsTotal.Add(1)
		p.buf = appendErrResponse(p.buf[:0], req.ID, fmt.Errorf("serv: unknown op %d", req.Op))
		return oids
	}

	ctx := context.Background()
	if req.DeadlineMicro > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMicro)*time.Microsecond)
		defer cancel()
	}

	results := make([]Result, 0, len(req.Cmds))
	run := func(tx *oodb.Txn) error {
		// The batch may rerun after a deadlock abort: results and the
		// created-OID scratch reset per attempt.
		results = results[:0]
		oids = oids[:0]
		for i := range req.Cmds {
			c := &req.Cmds[i]
			oids = append(oids, 0)
			res := Result{Kind: c.Kind}
			switch c.Kind {
			case CmdSend:
				oid, err := resolveTarget(c, oids)
				if err != nil {
					return err
				}
				out, err := tx.Send(oid, c.Method, valuesToGo(c.Args)...)
				if err != nil {
					return err
				}
				v, err := GoToValue(out)
				if err != nil {
					return err
				}
				res.Val = v
			case CmdNew:
				oid, err := tx.New(c.Class, valuesToGo(c.Args)...)
				if err != nil {
					return err
				}
				oids[i] = oid
				res.OID = uint64(oid)
			case CmdDelete:
				oid, err := resolveTarget(c, oids)
				if err != nil {
					return err
				}
				if err := tx.Delete(oid); err != nil {
					return err
				}
			case CmdScan:
				n, err := tx.ScanSend(c.Class, c.Method, c.Hier, valuesToGo(c.Args)...)
				if err != nil {
					return err
				}
				res.Count = uint64(n)
			}
			results = append(results, res)
		}
		return nil
	}

	var err error
	hist := s.histTxn
	switch {
	case req.Flags&FlagView != 0:
		s.views.Add(1)
		hist = s.histView
		err = s.db.ViewCtx(ctx, run)
	case req.Flags&FlagBlocking != 0:
		s.txns.Add(1)
		err = s.db.UpdateCtx(ctx, run)
	default:
		s.txns.Add(1)
		var fut oodb.Future
		fut, err = s.db.UpdateAsyncCtx(ctx, run)
		if err == nil {
			p.fut, p.hasFut = fut, true
		}
	}
	hist.record(time.Since(start))
	if err != nil {
		s.errorsTotal.Add(1)
		p.buf = appendErrResponse(p.buf[:0], req.ID, err)
		return oids
	}
	p.buf, err = AppendResponse(p.buf[:0], &Response{ID: req.ID, Results: results})
	if err != nil {
		s.errorsTotal.Add(1)
		p.buf = appendErrResponse(p.buf[:0], req.ID, err)
	}
	return oids
}

func resolveTarget(c *Cmd, oids []oodb.OID) (oodb.OID, error) {
	if c.Ref < 0 {
		return oodb.OID(c.OID), nil
	}
	if c.Ref >= len(oids) || oids[c.Ref] == 0 {
		return 0, fmt.Errorf("serv: command references command %d, which created nothing", c.Ref)
	}
	return oids[c.Ref], nil
}

func valuesToGo(vals []storage.Value) []any {
	if len(vals) == 0 {
		return nil
	}
	out := make([]any, len(vals))
	for i, v := range vals {
		out[i] = ValueToGo(v)
	}
	return out
}

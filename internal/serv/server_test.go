package serv_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/serv"
	"repro/oodb"
	"repro/oodb/client"
)

// startServer opens a database over one of the builtin benchmark
// schemas and serves it on a fresh unix socket.
func startServer(t *testing.T, schemaName string, o oodb.Options) (string, *oodb.Database, *serv.Server) {
	t.Helper()
	db := openDB(t, schemaName, o)
	sock := filepath.Join(t.TempDir(), "serv.sock")
	srv, err := serv.Listen(db, "unix", sock, serv.Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return sock, db, srv
}

func openDB(t *testing.T, schemaName string, o oodb.Options) *oodb.Database {
	t.Helper()
	src, comm, err := bench.EngineSchemaSource(bench.EngineSchemaName(schemaName))
	if err != nil {
		t.Fatal(err)
	}
	var opts []oodb.Option
	for _, c := range comm {
		opts = append(opts, oodb.WithCommuting(c[0], c[1], c[2]))
	}
	schema, err := oodb.Compile(src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	db, err := oodb.OpenWith(schema, oodb.Fine, o)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerEndToEnd(t *testing.T) {
	addr, db, srv := startServer(t, "banking", oodb.DefaultOptions())
	defer db.Close()
	defer srv.Close()
	c := dial(t, addr)
	ctx := context.Background()

	// One batch: create an account, deposit to it by intra-batch
	// reference, read the balance back.
	tx := client.NewTx()
	acct := tx.New("savings")
	tx.SendRef(acct, "deposit", int64(40))
	bal := tx.SendRef(acct, "getbalance")
	res, err := c.Do(ctx, tx)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := res.OID(acct.Index())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int(bal); got != 40 {
		t.Errorf("intra-batch balance %d, want 40", got)
	}

	// Separate transactions against the stored OID, including a
	// read-only view and a domain scan.
	if _, err := c.Do(ctx, client.NewTx().Reset()); err != nil {
		t.Fatal("empty batch:", err)
	}
	up := client.NewTx()
	up.Send(oid, "deposit", int64(2))
	if _, err := c.Do(ctx, up); err != nil {
		t.Fatal(err)
	}
	view := client.NewView()
	vb := view.Send(oid, "getbalance")
	vres, err := c.Do(ctx, view)
	if err != nil {
		t.Fatal(err)
	}
	if got := vres.Int(vb); got != 42 {
		t.Errorf("view balance %d, want 42", got)
	}
	scan := client.NewView()
	cnt := scan.Scan("savings", "getbalance", false)
	sres, err := c.Do(ctx, scan)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := sres.Count(cnt); err != nil || n != 1 {
		t.Errorf("scan count %d (err %v), want 1", n, err)
	}

	// Delete round trip, and the embedded view of the wire's work.
	del := client.NewTx()
	gone := del.New("checking")
	delTx := client.NewTx()
	dres, err := c.Do(ctx, del)
	if err != nil {
		t.Fatal(err)
	}
	goneOID, _ := dres.OID(gone.Index())
	delTx.Delete(goneOID)
	if _, err := c.Do(ctx, delTx); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *oodb.Txn) error {
		out, err := tx.Send(oid, "getbalance")
		if err != nil {
			return err
		}
		if out != int64(42) {
			t.Errorf("embedded sees balance %v, want 42", out)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if err := c.Ping(ctx); err != nil {
		t.Fatal("ping:", err)
	}
	stats, err := c.ServerStats(ctx)
	if err != nil || !strings.Contains(stats, "Requests") {
		t.Fatalf("stats %q (err %v)", stats, err)
	}
	if st := srv.Stats(); st.Txns < 4 || st.Views < 2 || st.ConnsActive != 1 {
		t.Errorf("server stats off: %+v", st)
	}
}

func TestServerErrorTaxonomy(t *testing.T) {
	addr, db, srv := startServer(t, "banking", oodb.DefaultOptions())
	defer db.Close()
	defer srv.Close()
	c := dial(t, addr)
	ctx := context.Background()

	var oid oodb.OID
	if err := db.Update(func(tx *oodb.Txn) error {
		var err error
		oid, err = tx.New("savings")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// A write inside a view crosses the wire as CodeSnapshotWrite and
	// satisfies the same predicate the embedded error does.
	bad := client.NewView()
	bad.Send(oid, "deposit", int64(1))
	if _, err := c.Do(ctx, bad); !oodb.IsSnapshotWrite(err) {
		t.Errorf("view write: got %v, want IsSnapshotWrite", err)
	}
	// The failure is per-request: the same batch fails identically when
	// replayed, and the connection stays usable.
	if _, err := c.Do(ctx, bad); !oodb.IsSnapshotWrite(err) {
		t.Errorf("view write replay: got %v, want IsSnapshotWrite", err)
	}

	// Unknown method and unknown OID: CodeOther, message preserved.
	miss := client.NewTx()
	miss.Send(oid, "nosuchmethod")
	_, err := c.Do(ctx, miss)
	if oodb.ErrorCode(err) != oodb.CodeOther || !strings.Contains(err.Error(), "nosuchmethod") {
		t.Errorf("unknown method: got %v", err)
	}
	ghost := client.NewTx()
	ghost.Send(oodb.OID(1<<40), "deposit", int64(1))
	if _, err := c.Do(ctx, ghost); oodb.ErrorCode(err) != oodb.CodeOther {
		t.Errorf("unknown OID: got %v", err)
	}

	// A deadline that expires in a server-side lock wait comes back as
	// CodeCanceled and satisfies IsCanceled — the context crossed the
	// wire as a deadline and was honored at the lock table.
	hold := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		db.Update(func(tx *oodb.Txn) error { //nolint:errcheck // holder txn
			if _, err := tx.Send(oid, "rename", "holder"); err != nil {
				return err
			}
			close(hold)
			<-release
			return nil
		})
	}()
	<-hold
	dctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	blocked := client.NewTx()
	blocked.Send(oid, "rename", "wire")
	_, err = c.Do(dctx, blocked)
	cancel()
	close(release)
	wg.Wait()
	if !oodb.IsCanceled(err) {
		t.Errorf("deadline in lock wait: got %v, want IsCanceled", err)
	}
	if oodb.ErrorCode(err) != oodb.CodeCanceled {
		t.Errorf("deadline code %v, want CodeCanceled", oodb.ErrorCode(err))
	}
}

func TestServerPipelined(t *testing.T) {
	addr, db, srv := startServer(t, "banking", oodb.DefaultOptions())
	defer db.Close()
	defer srv.Close()
	c := dial(t, addr)
	ctx := context.Background()

	setup := client.NewTx()
	acct := setup.New("savings")
	sres, err := c.Do(ctx, setup)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := sres.OID(acct.Index())

	// Many updates in flight at once, with views interleaved: every
	// response must come back matched to its request, and the final
	// balance must count every acknowledged deposit.
	const n = 300
	pendings := make([]*client.Pending, 0, n)
	kinds := make([]bool, 0, n) // true = view
	txs := make([]*client.Tx, 0, n)
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			v := client.NewView()
			v.Send(oid, "getbalance")
			p, err := c.Start(ctx, v)
			if err != nil {
				t.Fatal(err)
			}
			pendings, kinds, txs = append(pendings, p), append(kinds, true), append(txs, v)
			continue
		}
		u := client.NewTx()
		u.Send(oid, "deposit", int64(1))
		p, err := c.Start(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		pendings, kinds, txs = append(pendings, p), append(kinds, false), append(txs, u)
	}
	deposits := 0
	lastView := int64(-1)
	for i, p := range pendings {
		res, err := p.Wait()
		if err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
		if kinds[i] {
			// Responses resolve in request order on one connection, so
			// each view must see every deposit acknowledged before it.
			bal := res.Int(0)
			if bal < int64(deposits) || bal < lastView {
				t.Errorf("view %d saw balance %d after %d deposits (prev view %d)", i, bal, deposits, lastView)
			}
			lastView = bal
		} else {
			deposits++
		}
		_ = txs[i]
	}
	if deposits != n-n/5 {
		t.Fatalf("deposits %d, want %d", deposits, n-n/5)
	}
	final := client.NewView()
	fb := final.Send(oid, "getbalance")
	fres, err := c.Do(ctx, final)
	if err != nil {
		t.Fatal(err)
	}
	if got := fres.Int(fb); got != int64(deposits) {
		t.Errorf("final balance %d, want %d", got, deposits)
	}
}

func TestServerGracefulDrain(t *testing.T) {
	addr, db, srv := startServer(t, "banking", oodb.DefaultOptions())
	defer db.Close()
	c := dial(t, addr)
	ctx := context.Background()

	setup := client.NewTx()
	acct := setup.New("savings")
	sres, err := c.Do(ctx, setup)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := sres.OID(acct.Index())

	// Clients hammer while the server drains: every call either
	// succeeds or fails with a connection error; nothing hangs.
	var acked atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		cw := dial(t, addr)
		wg.Add(1)
		go func(cw *client.Client) {
			defer wg.Done()
			tx := client.NewTx()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx.Reset()
				tx.Send(oid, "deposit", int64(1))
				if _, err := cw.Do(ctx, tx); err != nil {
					return // connection cut by the drain: fine
				}
				acked.Add(1)
			}
		}(cw)
	}
	for acked.Load() < 50 {
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	// Every acknowledged deposit is in the database, and the drained
	// listener refuses new connections.
	if err := db.View(func(tx *oodb.Txn) error {
		out, err := tx.Send(oid, "getbalance")
		if err != nil {
			return err
		}
		if out.(int64) < acked.Load() {
			t.Errorf("balance %v < %d acked deposits", out, acked.Load())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Dial(addr); err == nil {
		t.Error("dial succeeded after drain")
	}
}

func TestServerSurvivesGarbage(t *testing.T) {
	addr, db, srv := startServer(t, "banking", oodb.DefaultOptions())
	defer db.Close()
	defer srv.Close()

	// A connection that never completes the handshake.
	raw, err := net.Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("GET / HTTP/1.1\r\n\r\n")) //nolint:errcheck
	raw.Close()

	// A handshaked connection that then sends a corrupt frame.
	raw2, err := net.Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := serv.WriteHandshake(raw2); err != nil {
		t.Fatal(err)
	}
	if err := serv.ReadHandshake(raw2); err != nil {
		t.Fatal(err)
	}
	raw2.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) //nolint:errcheck
	buf := make([]byte, 16)
	raw2.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := raw2.Read(buf); err == nil {
		t.Error("server answered a garbage frame instead of closing")
	}
	raw2.Close()

	// The server is still healthy for well-behaved clients.
	c := dial(t, addr)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after garbage: %v", err)
	}
}

// goldenOps builds a deterministic workload over the named schema.
type goldenOp struct {
	objIdx int
	method string
	args   []any
}

func goldenWorkload(schemaName string, nObjs, nOps int) []goldenOp {
	rng := rand.New(rand.NewSource(7))
	var methods []func(i int) goldenOp
	switch schemaName {
	case "banking":
		methods = []func(i int) goldenOp{
			func(i int) goldenOp { return goldenOp{i, "deposit", []any{int64(rng.Intn(50) + 1)}} },
			func(i int) goldenOp { return goldenOp{i, "withdraw", []any{int64(rng.Intn(60) + 1)}} },
			func(i int) goldenOp { return goldenOp{i, "rename", []any{fmt.Sprintf("owner-%d", rng.Intn(9))}} },
			func(i int) goldenOp { return goldenOp{i, "getbalance", nil} },
		}
	case "cad":
		methods = []func(i int) goldenOp{
			func(i int) goldenOp { return goldenOp{i, "revise", []any{int64(rng.Intn(5) + 1)}} },
			func(i int) goldenOp { return goldenOp{i, "approve", nil} },
			func(i int) goldenOp { return goldenOp{i, "inspect", []any{int64(4)}} },
			func(i int) goldenOp { return goldenOp{i, "session", []any{int64(3)}} },
		}
	}
	ops := make([]goldenOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		ops = append(ops, methods[rng.Intn(len(methods))](rng.Intn(nObjs)))
	}
	return ops
}

func goldenClasses(schemaName string) []string {
	if schemaName == "cad" {
		return []string{"part", "assembly"}
	}
	return []string{"savings", "checking"}
}

// dumpAll renders every object of the workload.
func dumpAll(t *testing.T, db *oodb.Database, oids []oodb.OID) string {
	t.Helper()
	var buf bytes.Buffer
	for _, oid := range oids {
		if err := db.DumpObject(&buf, oid); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestServerGoldenDifferential proves the wire path equivalent to the
// embedded path: the same deterministic workload, run embedded and run
// through a client batch per transaction, leaves byte-identical object
// dumps and byte-identical per-op results.
func TestServerGoldenDifferential(t *testing.T) {
	for _, schemaName := range []string{"banking", "cad"} {
		t.Run(schemaName, func(t *testing.T) {
			const nObjs, nOps = 8, 120
			classes := goldenClasses(schemaName)
			ops := goldenWorkload(schemaName, nObjs, nOps)

			// Embedded leg.
			edb := openDB(t, schemaName, oodb.DefaultOptions())
			defer edb.Close()
			var eOIDs []oodb.OID
			if err := edb.Update(func(tx *oodb.Txn) error {
				for i := 0; i < nObjs; i++ {
					oid, err := tx.New(classes[i%len(classes)])
					if err != nil {
						return err
					}
					eOIDs = append(eOIDs, oid)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			var eResults []any
			for _, op := range ops {
				if err := edb.Update(func(tx *oodb.Txn) error {
					out, err := tx.Send(eOIDs[op.objIdx], op.method, op.args...)
					if err != nil {
						return err
					}
					eResults = append(eResults, out)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}

			// Wire leg: same ops, one client batch per transaction.
			addr, wdb, srv := startServer(t, schemaName, oodb.DefaultOptions())
			defer wdb.Close()
			defer srv.Close()
			c := dial(t, addr)
			ctx := context.Background()
			setup := client.NewTx()
			refs := make([]client.Ref, nObjs)
			for i := 0; i < nObjs; i++ {
				refs[i] = setup.New(classes[i%len(classes)])
			}
			sres, err := c.Do(ctx, setup)
			if err != nil {
				t.Fatal(err)
			}
			wOIDs := make([]oodb.OID, nObjs)
			for i, r := range refs {
				if wOIDs[i], err = sres.OID(r.Index()); err != nil {
					t.Fatal(err)
				}
			}
			tx := client.NewTx()
			var wResults []any
			for _, op := range ops {
				tx.Reset()
				ri := tx.Send(wOIDs[op.objIdx], op.method, op.args...)
				res, err := c.Do(ctx, tx)
				if err != nil {
					t.Fatal(err)
				}
				out, err := res.Value(ri)
				if err != nil {
					t.Fatal(err)
				}
				wResults = append(wResults, out)
			}

			for i := range eResults {
				if eResults[i] != wResults[i] {
					t.Fatalf("op %d (%s): embedded %v, wire %v", i, ops[i].method, eResults[i], wResults[i])
				}
			}
			eDump, wDump := dumpAll(t, edb, eOIDs), dumpAll(t, wdb, wOIDs)
			if eDump != wDump {
				t.Errorf("dumps diverge:\nembedded:\n%s\nwire:\n%s", eDump, wDump)
			}
		})
	}
}

// TestServerKillMidPipelineDurability is the crash-window acceptance
// over the wire: deposits acknowledged to a pipelining client before
// the server is hard-killed must be present after the directory's WAL
// is recovered — the response only leaves the server after the group
// commit hardened the transaction.
func TestServerKillMidPipelineDurability(t *testing.T) {
	dir := t.TempDir()
	addr, db, srv := startServer(t, "banking", oodb.Options{Dir: dir})
	c := dial(t, addr)
	ctx := context.Background()

	setup := client.NewTx()
	acct := setup.New("savings")
	sres, err := c.Do(ctx, setup)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := sres.OID(acct.Index())

	// Pipeline deposits, counting acknowledgments as they resolve.
	var acked atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var window []*client.Pending
		for i := 0; i < 100000; i++ {
			tx := client.NewTx()
			tx.Send(oid, "deposit", int64(1))
			p, err := c.Start(ctx, tx)
			if err != nil {
				break // connection killed
			}
			window = append(window, p)
			if len(window) >= 32 {
				if _, err := window[0].Wait(); err != nil {
					break
				}
				acked.Add(1)
				window = window[1:]
			}
		}
		for _, p := range window {
			if _, err := p.Wait(); err == nil {
				acked.Add(1)
			}
		}
	}()
	for acked.Load() < 200 {
		time.Sleep(time.Millisecond)
	}

	// Copy the log out from under the live server — the moment of the
	// copy is the crash point; everything acked before it must be in
	// the copied bytes (the ack happened after the fsync). The tail may
	// be torn mid-record; recovery tolerates that.
	ackedAtCopy := acked.Load()
	crashDir := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srv.Abort()
	wg.Wait()
	c.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rdb := openDB(t, "banking", oodb.Options{Dir: crashDir})
	defer rdb.Close()
	if err := rdb.View(func(tx *oodb.Txn) error {
		out, err := tx.Send(oid, "getbalance")
		if err != nil {
			return err
		}
		if out.(int64) < ackedAtCopy {
			t.Errorf("recovered balance %v < %d deposits acked before the copy", out, ackedAtCopy)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// Package serv is the network front-end of the database: a TCP /
// unix-socket server speaking a length-prefixed binary protocol with
// per-connection sessions and pipelined requests, plus the shared wire
// codec the public oodb/client package reuses.
//
// # Frame layout
//
// Every message after the handshake travels in one frame, framed
// exactly like a WAL record (length + CRC-32C over the payload,
// little-endian):
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// A frame whose length exceeds the negotiated bound or whose checksum
// mismatches is a protocol error: the connection is closed (the server
// never resynchronizes inside a byte stream it cannot trust).
//
// # Handshake
//
// The client opens with 8 bytes — "FAVS", a version byte, three
// reserved zero bytes — and the server echoes its own 8 bytes back.
// Either side closes on a magic or version mismatch.
//
// # Requests
//
// Request payload:
//
//	u64 requestID | u8 op | body
//
// Request IDs are chosen by the client (monotonic per connection) and
// echoed verbatim in the response; responses to one connection's
// requests are delivered in request order. Ops: OpTxn runs a command
// batch in one transaction, OpPing is a no-op round trip, OpStats
// returns a JSON snapshot of the server's counters.
//
// OpTxn body:
//
//	u8 flags | uvarint deadlineMicros | u8 ncmds | ncmds × cmd
//
// FlagView runs the batch read-only on the snapshot path; FlagBlocking
// commits unpipelined (the response is written only after this
// transaction's own fsync wait, instead of riding the pipelined
// group-commit ack). deadlineMicros > 0 bounds the whole transaction —
// lock waits, retry backoff, fsync wait — server-side via
// context.WithTimeout.
//
// Commands (receivers of Send/Delete are either a literal OID or a
// reference to the result of an earlier New in the same batch):
//
//	CmdSend:   u8 kind | target | str method | u8 nargs | nargs × value
//	CmdNew:    u8 kind | str class | u8 nvals | nvals × value
//	CmdDelete: u8 kind | target
//	CmdScan:   u8 kind | str class | str method | u8 hier | u8 nargs | nargs × value
//
//	target: u8 idx — 0xFF followed by uvarint literalOID, or the
//	        index of an earlier CmdNew whose created OID is the receiver
//	str:    uvarint len | bytes
//	value:  u8 kind | int: varint | bool: u8 | string: str | ref: uvarint
//
// # Responses
//
// Response payload:
//
//	u64 requestID | u8 status | rest
//
// status is the oodb.Code of the outcome (CodeOK = success). On
// failure, rest is one str with the error message — the code travels
// losslessly, so client-side errors satisfy the same oodb.Is*
// predicates as embedded ones. On success, rest is the op's result: for
// OpTxn, u8 nresults then one result per command (CmdSend: value;
// CmdNew: uvarint OID; CmdDelete: nothing; CmdScan: uvarint count); for
// OpPing nothing; for OpStats one str of JSON.
package serv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/storage"
	"repro/oodb"
)

// Protocol constants.
const (
	// Version is the protocol version carried in the handshake.
	Version = 1

	// DefaultMaxFrame bounds a frame's payload (requests and
	// responses). Large enough for any sane command batch; small enough
	// that a garbage length prefix cannot make a peer allocate gigabytes.
	DefaultMaxFrame = 8 << 20

	frameHeaderSize = 8
	handshakeSize   = 8
)

// handshakeMagic is the first four bytes of the 8-byte hello.
var handshakeMagic = [4]byte{'F', 'A', 'V', 'S'}

// Ops.
const (
	OpTxn   = 1
	OpPing  = 2
	OpStats = 3
)

// OpTxn flags.
const (
	// FlagView runs the batch read-only (snapshot path; writes fail
	// with CodeSnapshotWrite).
	FlagView = 1 << 0
	// FlagBlocking commits unpipelined: the transaction blocks on its
	// own durability wait before the response is encoded.
	FlagBlocking = 1 << 1
)

// Command kinds.
const (
	CmdSend   = 1
	CmdNew    = 2
	CmdDelete = 3
	CmdScan   = 4
)

// refLiteral in a target byte means "a literal uvarint OID follows";
// any other value is the index of an earlier CmdNew in the same batch.
const refLiteral = 0xFF

// MaxCmds bounds the commands in one batch (the count is a u8 and
// refLiteral is reserved).
const MaxCmds = 254

// Wire value kinds (decoupled from storage's internal iota).
const (
	wireInt  = 0
	wireBool = 1
	wireStr  = 2
	wireRef  = 3
)

var (
	// ErrBadFrame is a framing-level protocol error (oversized length,
	// checksum mismatch, truncated payload).
	ErrBadFrame = errors.New("serv: bad frame")
	// ErrBadHandshake is a magic or version mismatch on connect.
	ErrBadHandshake = errors.New("serv: bad handshake")
	// ErrBadPayload is a malformed payload inside a valid frame.
	ErrBadPayload = errors.New("serv: bad payload")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Cmd is one decoded command of a transaction batch.
type Cmd struct {
	Kind   uint8
	Ref    int    // CmdSend/CmdDelete: index of the CmdNew supplying the receiver, or -1
	OID    uint64 // literal receiver when Ref < 0
	Class  string // CmdNew, CmdScan
	Method string // CmdSend, CmdScan
	Hier   bool   // CmdScan
	Args   []storage.Value
}

// Request is one decoded request.
type Request struct {
	ID            uint64
	Op            uint8
	Flags         uint8
	DeadlineMicro uint64
	Cmds          []Cmd
}

// Result is one command's result inside a successful OpTxn response.
type Result struct {
	Kind  uint8
	Val   storage.Value // CmdSend
	OID   uint64        // CmdNew
	Count uint64        // CmdScan
}

// Response is one decoded response.
type Response struct {
	ID      uint64
	Status  oodb.Code
	Err     string
	Results []Result
	Stats   string // OpStats payload
}

// WriteHandshake writes the 8-byte hello.
func WriteHandshake(w io.Writer) error {
	var b [handshakeSize]byte
	copy(b[:], handshakeMagic[:])
	b[4] = Version
	_, err := w.Write(b[:])
	return err
}

// ReadHandshake reads and validates the peer's hello.
func ReadHandshake(r io.Reader) error {
	var b [handshakeSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if [4]byte(b[:4]) != handshakeMagic {
		return fmt.Errorf("%w: magic %q", ErrBadHandshake, b[:4])
	}
	if b[4] != Version {
		return fmt.Errorf("%w: peer version %d, want %d", ErrBadHandshake, b[4], Version)
	}
	return nil
}

// WriteFrame frames payload (length + CRC) onto w.
func WriteFrame(w io.Writer, hdr *[frameHeaderSize]byte, payload []byte) error {
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame into buf (grown as needed) and returns the
// validated payload, aliasing buf's storage.
func ReadFrame(r *bufio.Reader, maxFrame int, buf []byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	if int64(n) > int64(maxFrame) {
		return nil, fmt.Errorf("%w: %d-byte frame exceeds %d-byte bound", ErrBadFrame, n, maxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	if crc32.Checksum(buf, crcTable) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	return buf, nil
}

// --- payload encoding ---

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v storage.Value) ([]byte, error) {
	switch v.Kind {
	case storage.KInt:
		b = append(b, wireInt)
		return binary.AppendVarint(b, v.I), nil
	case storage.KBool:
		b = append(b, wireBool)
		if v.B {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case storage.KString:
		b = append(b, wireStr)
		return appendStr(b, v.S), nil
	case storage.KRef:
		b = append(b, wireRef)
		return binary.AppendUvarint(b, uint64(v.R)), nil
	}
	return nil, fmt.Errorf("serv: unencodable value kind %d", v.Kind)
}

// AppendRequest appends the encoded request payload to b.
func AppendRequest(b []byte, req *Request) ([]byte, error) {
	b = binary.LittleEndian.AppendUint64(b, req.ID)
	b = append(b, req.Op)
	if req.Op != OpTxn {
		return b, nil
	}
	if len(req.Cmds) > MaxCmds {
		return nil, fmt.Errorf("serv: %d commands exceed the %d-command batch bound", len(req.Cmds), MaxCmds)
	}
	b = append(b, req.Flags)
	b = binary.AppendUvarint(b, req.DeadlineMicro)
	b = append(b, uint8(len(req.Cmds)))
	for i := range req.Cmds {
		c := &req.Cmds[i]
		b = append(b, c.Kind)
		var err error
		switch c.Kind {
		case CmdSend:
			if b, err = appendTarget(b, c); err != nil {
				return nil, err
			}
			b = appendStr(b, c.Method)
			if b, err = appendArgs(b, c.Args); err != nil {
				return nil, err
			}
		case CmdNew:
			b = appendStr(b, c.Class)
			if b, err = appendArgs(b, c.Args); err != nil {
				return nil, err
			}
		case CmdDelete:
			if b, err = appendTarget(b, c); err != nil {
				return nil, err
			}
		case CmdScan:
			b = appendStr(b, c.Class)
			b = appendStr(b, c.Method)
			if c.Hier {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			if b, err = appendArgs(b, c.Args); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("serv: unknown command kind %d", c.Kind)
		}
	}
	return b, nil
}

func appendTarget(b []byte, c *Cmd) ([]byte, error) {
	if c.Ref >= 0 {
		if c.Ref >= MaxCmds {
			return nil, fmt.Errorf("serv: command reference %d out of range", c.Ref)
		}
		return append(b, uint8(c.Ref)), nil
	}
	b = append(b, refLiteral)
	return binary.AppendUvarint(b, c.OID), nil
}

func appendArgs(b []byte, args []storage.Value) ([]byte, error) {
	if len(args) > 255 {
		return nil, fmt.Errorf("serv: %d arguments exceed the 255-argument bound", len(args))
	}
	b = append(b, uint8(len(args)))
	var err error
	for _, a := range args {
		if b, err = appendValue(b, a); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// AppendResponse appends the encoded response payload to b.
func AppendResponse(b []byte, resp *Response) ([]byte, error) {
	b = binary.LittleEndian.AppendUint64(b, resp.ID)
	b = append(b, uint8(resp.Status))
	if resp.Status != oodb.CodeOK {
		return appendStr(b, resp.Err), nil
	}
	if resp.Stats != "" {
		return appendStr(b, resp.Stats), nil
	}
	b = append(b, uint8(len(resp.Results)))
	var err error
	for i := range resp.Results {
		r := &resp.Results[i]
		b = append(b, r.Kind)
		switch r.Kind {
		case CmdSend:
			if b, err = appendValue(b, r.Val); err != nil {
				return nil, err
			}
		case CmdNew:
			b = binary.AppendUvarint(b, r.OID)
		case CmdDelete:
		case CmdScan:
			b = binary.AppendUvarint(b, r.Count)
		default:
			return nil, fmt.Errorf("serv: unknown result kind %d", r.Kind)
		}
	}
	return b, nil
}

// --- payload decoding ---

type reader struct {
	b   []byte
	off int
}

func (r *reader) u8() (uint8, error) {
	if r.off >= len(r.b) {
		return 0, ErrBadPayload
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, ErrBadPayload
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrBadPayload
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrBadPayload
	}
	r.off += n
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.b)-r.off) < n {
		return "", ErrBadPayload
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) value() (storage.Value, error) {
	k, err := r.u8()
	if err != nil {
		return storage.Value{}, err
	}
	switch k {
	case wireInt:
		i, err := r.varint()
		return storage.IntV(i), err
	case wireBool:
		b, err := r.u8()
		return storage.BoolV(b != 0), err
	case wireStr:
		s, err := r.str()
		return storage.StrV(s), err
	case wireRef:
		o, err := r.uvarint()
		return storage.RefV(storage.OID(o)), err
	}
	return storage.Value{}, fmt.Errorf("%w: value kind %d", ErrBadPayload, k)
}

func (r *reader) args(into []storage.Value) ([]storage.Value, error) {
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	into = into[:0]
	for i := 0; i < int(n); i++ {
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		into = append(into, v)
	}
	return into, nil
}

func (r *reader) target(c *Cmd, idx int) error {
	t, err := r.u8()
	if err != nil {
		return err
	}
	if t == refLiteral {
		o, err := r.uvarint()
		if err != nil {
			return err
		}
		c.Ref, c.OID = -1, o
		return nil
	}
	if int(t) >= idx {
		return fmt.Errorf("%w: command %d references later command %d", ErrBadPayload, idx, t)
	}
	c.Ref, c.OID = int(t), 0
	return nil
}

// DecodeRequest decodes a request payload into req, reusing req's
// command and argument storage. Strings are copied out of the payload.
func DecodeRequest(payload []byte, req *Request) error {
	r := reader{b: payload}
	var err error
	if req.ID, err = r.u64(); err != nil {
		return err
	}
	if req.Op, err = r.u8(); err != nil {
		return err
	}
	req.Flags, req.DeadlineMicro = 0, 0
	req.Cmds = req.Cmds[:0]
	if req.Op != OpTxn {
		return nil
	}
	if req.Flags, err = r.u8(); err != nil {
		return err
	}
	if req.DeadlineMicro, err = r.uvarint(); err != nil {
		return err
	}
	ncmds, err := r.u8()
	if err != nil {
		return err
	}
	for i := 0; i < int(ncmds); i++ {
		if cap(req.Cmds) > i {
			req.Cmds = req.Cmds[:i+1]
		} else {
			req.Cmds = append(req.Cmds, Cmd{})
		}
		c := &req.Cmds[i]
		if c.Kind, err = r.u8(); err != nil {
			return err
		}
		c.Class, c.Method, c.Hier = "", "", false
		switch c.Kind {
		case CmdSend:
			if err = r.target(c, i); err != nil {
				return err
			}
			if c.Method, err = r.str(); err != nil {
				return err
			}
			if c.Args, err = r.args(c.Args); err != nil {
				return err
			}
		case CmdNew:
			c.Ref = -1
			if c.Class, err = r.str(); err != nil {
				return err
			}
			if c.Args, err = r.args(c.Args); err != nil {
				return err
			}
		case CmdDelete:
			if err = r.target(c, i); err != nil {
				return err
			}
			c.Args = c.Args[:0]
		case CmdScan:
			c.Ref = -1
			if c.Class, err = r.str(); err != nil {
				return err
			}
			if c.Method, err = r.str(); err != nil {
				return err
			}
			h, err2 := r.u8()
			if err2 != nil {
				return err2
			}
			c.Hier = h != 0
			if c.Args, err = r.args(c.Args); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: command kind %d", ErrBadPayload, c.Kind)
		}
	}
	if r.off != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(payload)-r.off)
	}
	return nil
}

// DecodeResponse decodes a response payload into resp, reusing resp's
// result storage. isStats selects the OpStats body shape (the response
// itself does not carry the op).
func DecodeResponse(payload []byte, resp *Response, isStats bool) error {
	r := reader{b: payload}
	var err error
	if resp.ID, err = r.u64(); err != nil {
		return err
	}
	st, err := r.u8()
	if err != nil {
		return err
	}
	resp.Status = oodb.Code(st)
	resp.Err, resp.Stats = "", ""
	resp.Results = resp.Results[:0]
	if resp.Status != oodb.CodeOK {
		resp.Err, err = r.str()
		return err
	}
	if isStats {
		resp.Stats, err = r.str()
		return err
	}
	if r.off == len(payload) {
		return nil // ping: empty success body
	}
	n, err := r.u8()
	if err != nil {
		return err
	}
	for i := 0; i < int(n); i++ {
		var res Result
		if res.Kind, err = r.u8(); err != nil {
			return err
		}
		switch res.Kind {
		case CmdSend:
			if res.Val, err = r.value(); err != nil {
				return err
			}
		case CmdNew:
			if res.OID, err = r.uvarint(); err != nil {
				return err
			}
		case CmdDelete:
		case CmdScan:
			if res.Count, err = r.uvarint(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: result kind %d", ErrBadPayload, res.Kind)
		}
		resp.Results = append(resp.Results, res)
	}
	return nil
}

// GoToValue converts a Go argument (int, int64, bool, string, oodb.OID)
// into a wire value, mirroring the oodb facade's accepted kinds.
func GoToValue(a any) (storage.Value, error) {
	switch v := a.(type) {
	case int:
		return storage.IntV(int64(v)), nil
	case int64:
		return storage.IntV(v), nil
	case bool:
		return storage.BoolV(v), nil
	case string:
		return storage.StrV(v), nil
	case oodb.OID:
		return storage.RefV(v), nil
	}
	return storage.Value{}, fmt.Errorf("serv: unsupported argument type %T", a)
}

// ValueToGo converts a wire value into the Go value the oodb facade
// would return (int64, bool, string or oodb.OID).
func ValueToGo(v storage.Value) any {
	switch v.Kind {
	case storage.KInt:
		return v.I
	case storage.KBool:
		return v.B
	case storage.KString:
		return v.S
	case storage.KRef:
		return v.R
	}
	return nil
}

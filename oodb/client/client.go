// Package client is the Go client of the favserv wire protocol: a
// connection-per-Client, pipelining network API whose transactions are
// command batches executed server-side under the same retry/commit
// machinery as the embedded API.
//
// The two shapes:
//
//	c, err := client.Dial("/run/favserv.sock") // or "host:6422"
//	tx := client.NewTx()
//	acct := tx.New("account", int64(100))
//	dep := tx.Send(acct.Ref(), "deposit", int64(10))
//	res, err := c.Do(ctx, tx)               // one round trip
//	balance, _ := res.Value(dep)
//
// and pipelined — many transactions in flight on one connection, each
// acknowledged (durably, under full sync) in order:
//
//	p1, _ := c.Start(ctx, tx1)
//	p2, _ := c.Start(ctx, tx2)
//	res1, err1 := p1.Wait()
//	res2, err2 := p2.Wait()
//
// Errors carry the server's taxonomy code losslessly: a deadlock on the
// server satisfies oodb.IsDeadlock here, a snapshot-write violation
// oodb.IsSnapshotWrite, a deadline expiry oodb.IsCanceled, and so on.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serv"
	"repro/internal/storage"
	"repro/oodb"
)

// Client is one connection to a favserv server. It is safe for
// concurrent use: requests from any goroutine are multiplexed onto the
// single connection and demultiplexed by request ID.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer

	wmu   sync.Mutex // serializes frame writes (and flush decisions)
	wbuf  []byte     // request-payload scratch, reused under wmu
	dirty bool       // frames written to bw since the last flush

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*Pending
	err     error // latched connection failure
	closed  bool

	readerDone chan struct{}
}

// Dial connects to addr and performs the protocol handshake. An addr
// containing a path separator (or prefixed "unix:") is a unix socket;
// anything else is host:port TCP — the same convention favbench -addr
// uses.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial bounded by ctx.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	network := "tcp"
	if s, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, addr = "unix", s
	} else if strings.ContainsRune(addr, '/') {
		network = "unix"
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	if err := serv.WriteHandshake(conn); err != nil {
		conn.Close()
		return nil, err
	}
	if err := serv.ReadHandshake(conn); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, 64<<10),
		pending:    make(map[uint64]*Pending),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down. In-flight Pendings fail with a
// connection error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// readLoop demultiplexes responses to their Pendings by request ID.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var buf []byte
	for {
		payload, err := serv.ReadFrame(br, serv.DefaultMaxFrame, buf)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		buf = payload
		var resp serv.Response
		c.mu.Lock()
		p := c.pending[respID(payload)]
		delete(c.pending, respID(payload))
		c.mu.Unlock()
		if p == nil {
			c.fail(fmt.Errorf("client: response for unknown request"))
			return
		}
		if err := serv.DecodeResponse(payload, &resp, p.isStats); err != nil {
			c.fail(fmt.Errorf("client: %w", err))
			return
		}
		p.resolve(&resp)
	}
}

// respID peeks the request ID without a full decode.
func respID(payload []byte) uint64 {
	if len(payload) < 8 {
		return 0
	}
	return uint64(payload[0]) | uint64(payload[1])<<8 | uint64(payload[2])<<16 | uint64(payload[3])<<24 |
		uint64(payload[4])<<32 | uint64(payload[5])<<40 | uint64(payload[6])<<48 | uint64(payload[7])<<56
}

// fail latches a connection error and resolves every in-flight Pending
// with it.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	ps := make([]*Pending, 0, len(c.pending))
	for id, p := range c.pending {
		ps = append(ps, p)
		delete(c.pending, id)
	}
	err = c.err
	c.mu.Unlock()
	for _, p := range ps {
		p.err = err
		close(p.ch)
	}
}

// Tx is a transaction batch under construction. Build it with New /
// Send / Delete / Scan — each returns the index its result will occupy
// in the Results — then run it with Do or Start. A Tx is not safe for
// concurrent use; it may be reused after the call that ran it returns
// (Do) or resolves (Pending.Wait).
type Tx struct {
	view     bool
	blocking bool
	cmds     []serv.Cmd
	err      error
}

// NewTx starts an empty update batch: one server-side transaction,
// committed pipelined (the response is written once the commit is
// acknowledged per the server's sync policy).
func NewTx() *Tx { return &Tx{} }

// NewView starts an empty read-only batch: it runs on the server's
// lock-free snapshot path; any command that could write fails with an
// error satisfying oodb.IsSnapshotWrite.
func NewView() *Tx { return &Tx{view: true} }

// Blocking switches the batch to an unpipelined commit: the server
// blocks on this transaction's own durability wait before responding
// instead of riding the pipelined group-commit acknowledgment. Use it
// to measure what pipelining buys; semantics are identical.
func (t *Tx) Blocking() *Tx { t.blocking = true; return t }

// Ref converts a command index (a New's return) into a receiver
// reference usable by Send and Delete in the same batch.
type Ref struct{ idx int }

// Index is the command's index in the batch's Results.
func (r Ref) Index() int { return r.idx }

// Reset empties the batch for rebuilding, keeping its mode and storage.
func (t *Tx) Reset() *Tx {
	t.cmds = t.cmds[:0]
	t.err = nil
	return t
}

// Len is the number of commands in the batch.
func (t *Tx) Len() int { return len(t.cmds) }

func (t *Tx) push(c serv.Cmd) int {
	if len(t.cmds) >= serv.MaxCmds && t.err == nil {
		t.err = fmt.Errorf("client: batch exceeds %d commands", serv.MaxCmds)
	}
	t.cmds = append(t.cmds, c)
	return len(t.cmds) - 1
}

func (t *Tx) convArgs(args []any) []storage.Value {
	if len(args) == 0 {
		return nil
	}
	out := make([]storage.Value, len(args))
	for i, a := range args {
		v, err := serv.GoToValue(a)
		if err != nil && t.err == nil {
			t.err = err
		}
		out[i] = v
	}
	return out
}

// New appends an object creation (class, positional field values) and
// returns a Ref to the created OID: pass it as the receiver of a later
// Send or Delete in this batch, or read the OID from the Results at
// Ref.Index().
func (t *Tx) New(class string, fieldValues ...any) Ref {
	return Ref{t.push(serv.Cmd{Kind: serv.CmdNew, Ref: -1, Class: class, Args: t.convArgs(fieldValues)})}
}

// Send appends a message send to a stored object and returns the index
// of its result value.
func (t *Tx) Send(oid oodb.OID, method string, args ...any) int {
	return t.push(serv.Cmd{Kind: serv.CmdSend, Ref: -1, OID: uint64(oid), Method: method, Args: t.convArgs(args)})
}

// SendRef is Send with the receiver created earlier in this batch.
func (t *Tx) SendRef(r Ref, method string, args ...any) int {
	return t.push(serv.Cmd{Kind: serv.CmdSend, Ref: r.idx, Method: method, Args: t.convArgs(args)})
}

// Delete appends an object deletion.
func (t *Tx) Delete(oid oodb.OID) int {
	return t.push(serv.Cmd{Kind: serv.CmdDelete, Ref: -1, OID: uint64(oid)})
}

// DeleteRef is Delete with the receiver created earlier in this batch.
func (t *Tx) DeleteRef(r Ref) int {
	return t.push(serv.Cmd{Kind: serv.CmdDelete, Ref: r.idx})
}

// Scan appends a domain scan (oodb.Txn.ScanSend) and returns the index
// of its visit count.
func (t *Tx) Scan(class, method string, hierarchical bool, args ...any) int {
	return t.push(serv.Cmd{Kind: serv.CmdScan, Ref: -1, Class: class, Method: method, Hier: hierarchical, Args: t.convArgs(args)})
}

// Results holds one transaction's results, indexed by the values the
// batch builders returned.
type Results struct {
	res []serv.Result
}

// Len is the number of results (== the batch's Len on success).
func (r *Results) Len() int { return len(r.res) }

// Value returns a Send result (int64, bool, string or oodb.OID).
func (r *Results) Value(i int) (any, error) {
	if i < 0 || i >= len(r.res) || r.res[i].Kind != serv.CmdSend {
		return nil, fmt.Errorf("client: result %d is not a send result", i)
	}
	return serv.ValueToGo(r.res[i].Val), nil
}

// Int returns a Send result as int64 (0 if it was not an integer).
func (r *Results) Int(i int) int64 {
	if i < 0 || i >= len(r.res) {
		return 0
	}
	return r.res[i].Val.I
}

// OID returns a New result.
func (r *Results) OID(i int) (oodb.OID, error) {
	if i < 0 || i >= len(r.res) || r.res[i].Kind != serv.CmdNew {
		return 0, fmt.Errorf("client: result %d is not a create result", i)
	}
	return oodb.OID(r.res[i].OID), nil
}

// Count returns a Scan result's visit count.
func (r *Results) Count(i int) (int, error) {
	if i < 0 || i >= len(r.res) || r.res[i].Kind != serv.CmdScan {
		return 0, fmt.Errorf("client: result %d is not a scan result", i)
	}
	return int(r.res[i].Count), nil
}

// Pending is an in-flight pipelined request. Wait blocks until the
// server's response (for an update: the durability acknowledgment)
// arrives.
type Pending struct {
	c       *Client
	ch      chan struct{}
	res     Results
	err     error
	isStats bool
	stats   string
}

func (p *Pending) resolve(resp *serv.Response) {
	if resp.Status != oodb.CodeOK {
		p.err = &oodb.Error{Code: resp.Status, Msg: resp.Err}
	} else {
		p.res.res = append(p.res.res[:0], resp.Results...)
		p.stats = resp.Stats
	}
	close(p.ch)
}

// Wait blocks until the response arrives and returns it. Call once.
func (p *Pending) Wait() (*Results, error) {
	select {
	case <-p.ch:
	default:
		// The request may still be sitting in the write buffer — sends
		// are flushed lazily so a burst of Starts coalesces into one
		// syscall. Nothing to wait for until the buffer is on the wire.
		p.c.flush()
		<-p.ch
	}
	if p.err != nil {
		return nil, p.err
	}
	return &p.res, nil
}

// Done reports without blocking whether the response has arrived. Like
// Wait, it flushes any buffered requests first, so polling Done makes
// progress.
func (p *Pending) Done() bool {
	select {
	case <-p.ch:
		return true
	default:
		p.c.flush()
		return false
	}
}

// Start sends the batch without waiting for its response: the returned
// Pending resolves when the server acknowledges, and any number of
// Pendings may be in flight on one Client — that window is what lets
// one server-side group-commit fsync carry many client transactions.
// Requests are buffered and put on the wire by the first Wait (or
// Done) that needs them, so a burst of Starts costs one write syscall;
// a Start never followed by any Wait on the connection may sit in the
// buffer. ctx bounds the enqueue and travels to the server as the
// transaction's deadline; cancelling ctx after Start does not chase
// the request.
func (c *Client) Start(ctx context.Context, t *Tx) (*Pending, error) {
	if t.err != nil {
		return nil, t.err
	}
	var flags uint8
	if t.view {
		flags |= serv.FlagView
	}
	if t.blocking {
		flags |= serv.FlagBlocking
	}
	req := serv.Request{Op: serv.OpTxn, Flags: flags, Cmds: t.cmds}
	if dl, ok := ctx.Deadline(); ok {
		us := time.Until(dl).Microseconds()
		if us <= 0 {
			return nil, ctx.Err()
		}
		req.DeadlineMicro = uint64(us)
	}
	return c.send(&req)
}

// Do runs the batch and waits for its results: Start + Wait.
func (c *Client) Do(ctx context.Context, t *Tx) (*Results, error) {
	p, err := c.Start(ctx, t)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	p, err := c.send(&serv.Request{Op: serv.OpPing})
	if err != nil {
		return err
	}
	_, err = p.Wait()
	return err
}

// ServerStats returns the server's counter snapshot as JSON.
func (c *Client) ServerStats(ctx context.Context) (string, error) {
	req := serv.Request{Op: serv.OpStats}
	p, err := c.send(&req) // send marks the Pending as a stats reply
	if err != nil {
		return "", err
	}
	_, err = p.Wait()
	return p.stats, err
}

// send assigns an ID, registers the Pending and writes the frame into
// the write buffer. The buffer is NOT flushed here: a pipelining caller
// issuing a burst of Starts coalesces them into one write syscall, and
// the first Wait that actually blocks (or a full buffer) pushes the
// bytes out.
func (c *Client) send(req *serv.Request) (*Pending, error) {
	p := &Pending{c: c, ch: make(chan struct{}), isStats: req.Op == serv.OpStats}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.mu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("client: closed")
		}
		return nil, err
	}
	req.ID = c.nextID.Add(1)
	c.pending[req.ID] = p
	c.mu.Unlock()

	payload, err := serv.AppendRequest(c.wbuf[:0], req)
	if err == nil {
		c.wbuf = payload
		var hdr [8]byte
		err = serv.WriteFrame(c.bw, &hdr, payload)
		c.dirty = true
	}
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	return p, nil
}

// flush pushes buffered request frames onto the wire.
func (c *Client) flush() {
	c.wmu.Lock()
	if c.dirty {
		c.dirty = false
		if err := c.bw.Flush(); err != nil {
			c.wmu.Unlock()
			c.fail(fmt.Errorf("client: flush: %w", err))
			return
		}
	}
	c.wmu.Unlock()
}

// Package oodb is the public API of the reproduction of Malta &
// Martinez, "Automating Fine Concurrency Control in Object-Oriented
// Databases" (ICDE 1993): an embeddable, in-memory object-oriented
// database whose concurrency control is derived at compile time from the
// source code of methods.
//
// The workflow mirrors the paper:
//
//	schema, err := oodb.Compile(source)          // parse + access-vector analysis
//	db, err := oodb.Open(schema, oodb.Fine)      // pick a locking protocol
//	err = db.Update(func(tx *oodb.Txn) error {   // strict 2PL with deadlock retry
//	    acct, err := tx.New("account", int64(100))
//	    _, err = tx.Send(acct, "deposit", int64(10))
//	    return err
//	})
//
// Methods are written in the paper's notation (see internal/mdl):
//
//	class account is
//	    instance variables are
//	        balance : integer
//	    method deposit(n) is
//	        balance := balance + n
//	    end
//	end
//
// Besides the paper's protocol (Fine), Open accepts the baselines the
// paper compares against — classical read/write instance locking with
// and without announced modes, run-time field locking, and the 1NF
// relational decomposition — so applications can measure what the finer
// modes buy them.
package oodb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Strategy selects a concurrency-control protocol.
type Strategy string

// Available protocols.
const (
	// Fine is the paper's contribution: per-method access modes derived
	// from transitive access vectors, one instance + one class lock per
	// top-level message (section 5).
	Fine Strategy = "fine"
	// ReadWrite is the instance-granule read/write baseline (section 3):
	// one control per message, escalation included.
	ReadWrite Strategy = "rw"
	// ReadWriteImplicit is the ORION-style baseline ([8]/[17], section
	// 5): read/write modes with implicit locking along the inheritance
	// graph (whole-extent accesses lock the domain root only).
	ReadWriteImplicit Strategy = "rw-implicit"
	// ReadWriteAnnounce is ReadWrite with the most exclusive mode
	// announced up front (the System R remedy).
	ReadWriteAnnounce Strategy = "rw-announce"
	// FieldLocking is run-time field-granule locking (Agrawal & El
	// Abbadi [1], discussed in section 6).
	FieldLocking Strategy = "field"
	// Relational locks the 1NF decomposition of the hierarchy
	// (sections 3 and 5.2).
	Relational Strategy = "relational"
)

// Strategies lists every available protocol.
func Strategies() []Strategy {
	return []Strategy{Fine, ReadWrite, ReadWriteImplicit, ReadWriteAnnounce, FieldLocking, Relational}
}

func (s Strategy) impl() (engine.Strategy, error) {
	switch s {
	case Fine:
		return engine.FineCC{}, nil
	case ReadWrite:
		return engine.RWCC{}, nil
	case ReadWriteImplicit:
		return engine.RWImplicitCC{}, nil
	case ReadWriteAnnounce:
		return engine.RWAnnounceCC{}, nil
	case FieldLocking:
		return engine.FieldCC{}, nil
	case Relational:
		return engine.RelCC{}, nil
	}
	return nil, fmt.Errorf("oodb: unknown strategy %q", s)
}

// OID identifies a stored object.
type OID = storage.OID

// Option configures Compile.
type Option func(*options)

type options struct {
	overrides *core.Overrides
}

// WithCommuting declares ad hoc commutativity for two methods of a class
// (section 3: predefined classes such as escrow counters may be
// delivered with commutativity beyond what their access vectors allow).
// It applies to the class and to subclasses that do not override either
// method.
func WithCommuting(class, method1, method2 string) Option {
	return func(o *options) {
		if o.overrides == nil {
			o.overrides = core.NewOverrides()
		}
		o.overrides.Declare(class, method1, method2)
	}
}

// Schema is a compiled schema: classes, fields, methods, and the
// complete compile-time concurrency-control analysis.
type Schema struct {
	compiled *core.Compiled
}

// Compile parses mdl source and runs the paper's full pipeline:
// extraction of direct access vectors and self-call sets (defs 6–8),
// late-binding resolution graphs (def 9), transitive access vectors
// (def 10) and per-class commutativity tables (section 5.1).
func Compile(source string, opts ...Option) (*Schema, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	var coreOpts []core.Option
	if o.overrides != nil {
		coreOpts = append(coreOpts, core.WithOverrides(o.overrides))
	}
	c, err := core.CompileSource(source, coreOpts...)
	if err != nil {
		return nil, err
	}
	return &Schema{compiled: c}, nil
}

// Classes returns the class names in declaration order.
func (s *Schema) Classes() []string {
	out := make([]string, len(s.compiled.Schema.Order))
	for i, c := range s.compiled.Schema.Order {
		out[i] = c.Name
	}
	return out
}

// Methods returns METHODS(class): every method name visible on proper
// instances of the class, sorted.
func (s *Schema) Methods(class string) []string {
	c := s.compiled.Schema.Class(class)
	if c == nil {
		return nil
	}
	return append([]string(nil), c.MethodList...)
}

// Fields returns FIELDS(class): every visible field name, inherited
// fields first.
func (s *Schema) Fields(class string) []string {
	c := s.compiled.Schema.Class(class)
	if c == nil {
		return nil
	}
	out := make([]string, len(c.Fields))
	for i, f := range c.Fields {
		out[i] = f.Name
	}
	return out
}

// AccessVector renders the transitive access vector of a method on
// proper instances of a class, in the paper's full-width notation.
func (s *Schema) AccessVector(class, method string) (string, error) {
	c := s.compiled.Schema.Class(class)
	if c == nil {
		return "", fmt.Errorf("oodb: unknown class %q", class)
	}
	tav, ok := s.compiled.TAV(c, method)
	if !ok {
		return "", fmt.Errorf("oodb: no method %q in class %s", method, class)
	}
	return tav.FormatFull(s.compiled.Schema, c.Fields), nil
}

// Commute reports whether two methods of a class commute — whether
// concurrent transactions may run them on a common instance.
func (s *Schema) Commute(class, method1, method2 string) (bool, error) {
	cc := s.compiled.Class(class)
	if cc == nil {
		return false, fmt.Errorf("oodb: unknown class %q", class)
	}
	if cc.Table.ModeIndex(method1) < 0 || cc.Table.ModeIndex(method2) < 0 {
		return false, fmt.Errorf("oodb: unknown method on class %s", class)
	}
	return cc.Table.Commutes(method1, method2), nil
}

// CommutativityTable renders the class's relation in the layout of the
// paper's Table 2.
func (s *Schema) CommutativityTable(class string) (string, error) {
	cc := s.compiled.Class(class)
	if cc == nil {
		return "", fmt.Errorf("oodb: unknown class %q", class)
	}
	return cc.Table.String(), nil
}

// ResolutionGraphDot renders the late-binding resolution graph of a
// class (the paper's Figure 2) in Graphviz DOT syntax.
func (s *Schema) ResolutionGraphDot(class string) (string, error) {
	cc := s.compiled.Class(class)
	if cc == nil {
		return "", fmt.Errorf("oodb: unknown class %q", class)
	}
	return cc.Graph.Dot(), nil
}

// Database is an open object database.
type Database struct {
	db *engine.DB
}

// OpenOption configures Open beyond the strategy choice.
type OpenOption func(*openConfig)

type openConfig struct {
	durable           bool
	dir               string
	groupCommitWindow time.Duration
	checkpointBytes   int64
	sync              wal.SyncPolicy
	fs                wal.FS
	noMetrics         bool
	slowTxnThreshold  time.Duration
}

// withFS stands a filesystem (typically a wal.FaultFS) under the redo
// log. Test-only: the failure-injection suites use it to drive the
// public API onto a hostile disk; it is deliberately unexported.
func withFS(fsys wal.FS) OpenOption {
	return func(c *openConfig) { c.fs = fsys }
}

// Durable makes the database persistent under dir: Open recovers any
// existing checkpoint + redo-log tail (crash-safe, torn-tail tolerant),
// and every later commit is fsynced — batched by group commit — before
// its locks release. Close the database to flush cleanly; a crash at
// any point loses nothing that was committed.
func Durable(dir string) OpenOption {
	return func(c *openConfig) {
		c.durable = true
		c.dir = dir
	}
}

// GroupCommitWindow sets how long the log's writer goroutine waits for
// more concurrent commits to share one fsync (default 0: batch only
// what is already queued). Larger windows trade commit latency for
// fewer fsyncs under load.
func GroupCommitWindow(d time.Duration) OpenOption {
	return func(c *openConfig) { c.groupCommitWindow = d }
}

// CheckpointEvery auto-compacts the log whenever the live segment
// exceeds the given size (default: only Database.Checkpoint compacts).
func CheckpointEvery(bytes int64) OpenOption {
	return func(c *openConfig) { c.checkpointBytes = bytes }
}

// SyncEvery bounds the durability loss window instead of paying an
// fsync per commit batch: commits are acknowledged after the buffered
// OS write, and the log fsyncs at most every d — even when idle, any
// unsynced commit is hardened within d of its write. An OS crash or
// power loss can lose at most the last d of acknowledged commits; a
// process crash loses nothing. The Redis "everysec" middle point
// between full sync and RelaxedSync.
func SyncEvery(d time.Duration) OpenOption {
	return func(c *openConfig) { c.sync = wal.SyncEvery(d) }
}

// SyncNever acknowledges commits after the buffered OS write without
// waiting for fsync (the log still fsyncs on checkpoint, Sync and
// Close). A process crash loses nothing; an OS crash or power loss may
// lose the most recent commits. The classic durability/throughput
// trade-off knob; SyncEvery is the bounded-loss middle point between
// this and the full-sync default.
func SyncNever() OpenOption {
	return func(c *openConfig) { c.sync = wal.SyncNever }
}

// RelaxedSync is the historical name of the sync-never policy.
//
// Deprecated: use SyncNever (or Options.SyncNever via OpenWith), whose
// name matches the wal.SyncPolicy it selects; SyncEvery is the
// bounded-loss middle point. RelaxedSync remains as an alias and will
// not change behavior.
func RelaxedSync() OpenOption { return SyncNever() }

// NoMetrics strips the observability registry: Metrics returns nil and
// the instrumented hot paths reduce to a nil check. The default keeps
// metrics on — the overhead is a clock read and a few atomic adds per
// send (measured in EXPERIMENTS.md).
func NoMetrics() OpenOption {
	return func(c *openConfig) { c.noMetrics = true }
}

// SlowTxnThreshold arms the transaction flight recorder from the start:
// any transaction slower than d captures its typed event trace (begin,
// lock waits, abort reason, commit epoch, fsync wait) for SlowTxns.
// The recorder can also be armed or re-tuned later with
// SetSlowTxnThreshold.
func SlowTxnThreshold(d time.Duration) OpenOption {
	return func(c *openConfig) { c.slowTxnThreshold = d }
}

// Open creates a database over a compiled schema with the chosen
// concurrency-control strategy. With no options the database is
// volatile; Durable(dir) adds the write-ahead log, checkpoints and
// crash recovery:
//
//	db, err := oodb.Open(schema, oodb.Fine, oodb.Durable("/data/app"))
func Open(s *Schema, strategy Strategy, opts ...OpenOption) (*Database, error) {
	impl, err := strategy.impl()
	if err != nil {
		return nil, err
	}
	var cfg openConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	db, err := engine.OpenWithOptions(s.compiled, engine.Options{
		Strategy:          impl,
		Durable:           cfg.durable,
		Dir:               cfg.dir,
		GroupCommitWindow: cfg.groupCommitWindow,
		CheckpointBytes:   cfg.checkpointBytes,
		Sync:              cfg.sync,
		FS:                cfg.fs,
		NoMetrics:         cfg.noMetrics,
		SlowTxnThreshold:  cfg.slowTxnThreshold,
	})
	if err != nil {
		return nil, err
	}
	return &Database{db: db}, nil
}

// Close flushes and closes the redo log (no-op for a volatile
// database). In-flight commits complete durably first.
func (d *Database) Close() error { return d.db.Close() }

// Checkpoint compacts the redo log into a fresh checkpoint and
// truncates the replayed segments (no-op for a volatile database).
func (d *Database) Checkpoint() error { return d.db.Checkpoint() }

// RecoveryStats describes what a durable Open found and replayed.
type RecoveryStats struct {
	Checkpoint      bool  // a checkpoint file was loaded
	SegmentsScanned int   // log segments replayed
	RecordsApplied  int64 // commit records applied
	TornTailBytes   int64 // bytes truncated off a crash-torn log tail
}

// Recovery reports what the durable Open replayed (zero value for a
// volatile database or a fresh directory).
func (d *Database) Recovery() RecoveryStats {
	info := d.db.Recovery()
	return RecoveryStats{
		Checkpoint:      info.Checkpoint,
		SegmentsScanned: info.Segments,
		RecordsApplied:  info.Records,
		TornTailBytes:   info.TornTailBytes,
	}
}

// Health describes whether the database can still accept writes. A
// durable database whose log hits an unrecoverable I/O error latches
// fail-stop and degrades to read-only: reads keep serving the committed
// in-memory state (exactly what recovery would reproduce), writes fail
// with an error matching IsReadOnly. Reopening the directory — after
// the disk is fixed — recovers the committed prefix and clears the
// condition.
type Health struct {
	// ReadOnly: the log has failed and writes are refused.
	ReadOnly bool
	// DiskFull: the failure was out-of-space specifically.
	DiskFull bool
	// Err is the original I/O failure (nil while healthy).
	Err error
}

// Health reports the database's write-availability state. A volatile
// database is always healthy.
func (d *Database) Health() Health {
	err := d.db.Failed()
	if err == nil {
		return Health{}
	}
	return Health{ReadOnly: true, DiskFull: errors.Is(err, wal.ErrDiskFull), Err: err}
}

// Txn is an open transaction bound to its database session.
type Txn struct {
	db *Database
	tx *txn.Txn
}

// Begin starts a transaction. Prefer Update for automatic deadlock
// retries; with Begin the caller must Commit or Abort and handle
// IsDeadlock errors itself.
func (d *Database) Begin() *Txn {
	return &Txn{db: d, tx: d.db.Begin()}
}

// Update runs fn in a transaction, committing on success, rolling back
// on error, and transparently retrying deadlock victims and lock-wait
// timeouts with backoff.
// The *Txn passed to fn is only valid inside the call: it is recycled
// when Update returns (and fn may run more than once on deadlock), so
// it must not be retained or used afterwards.
func (d *Database) Update(fn func(*Txn) error) error {
	return d.db.RunWithRetry(func(tx *txn.Txn) error {
		return fn(&Txn{db: d, tx: tx})
	})
}

// UpdateCtx is Update honoring ctx at every blocking point: before each
// attempt, during lock waits (a cancellation withdraws the queued wait
// and aborts the attempt), across the deadlock-retry backoff, and at
// the commit's group-commit fsync wait. Cancellation surfaces as an
// error satisfying IsCanceled and wrapping ctx's own error, so
// errors.Is(err, context.DeadlineExceeded) works too.
//
// One asymmetry is inherent: once the commit record is sequenced in the
// log it cannot be unsequenced, so a cancellation that strikes during
// the durability wait returns an IsUnackedCommit error — the
// transaction IS committed and its effects visible; only the caller
// stopped waiting for the disk's confirmation. A context that can never
// be canceled (context.Background()) makes UpdateCtx exactly Update,
// at zero added cost on the hot path.
func (d *Database) UpdateCtx(ctx context.Context, fn func(*Txn) error) error {
	return d.db.RunWithRetryCtx(ctx, func(tx *txn.Txn) error {
		return fn(&Txn{db: d, tx: tx})
	})
}

// View runs fn in a read-only transaction. Under strategies with
// snapshot-read support (all of the built-in ones) the transaction runs
// on the lock-free multiversion read path: it takes no locks, never
// blocks or aborts a writer, and observes the committed slot values as
// of its begin epoch. Deletions are the one exception to snapshot
// isolation: deletes are not versioned, so an instance deleted by a
// transaction that commits after the View began disappears from the
// View mid-flight (a lookup fails; a scan skips it) rather than
// remaining visible at the begin epoch. Sends that could write — per
// the method's transitive access vector, decided at compile time —
// fail with an error matching IsSnapshotWrite, as do New and Delete.
func (d *Database) View(fn func(*Txn) error) error {
	return d.db.RunReadOnly(func(tx *txn.Txn) error {
		return fn(&Txn{db: d, tx: tx})
	})
}

// ViewCtx is View honoring ctx. On the snapshot path the transaction
// never blocks, so the cancellation points are the check before begin
// and whatever fn observes through SendCtx; under a strategy without
// snapshot reads the locking fallback bounds its lock waits by ctx like
// UpdateCtx.
func (d *Database) ViewCtx(ctx context.Context, fn func(*Txn) error) error {
	return d.db.RunReadOnlyCtx(ctx, func(tx *txn.Txn) error {
		return fn(&Txn{db: d, tx: tx})
	})
}

// Future is the durability ticket of an UpdateAsync commit. The zero
// value — and the ticket of a read-only or volatile transaction — is
// already resolved.
type Future struct {
	f txn.Future
}

// Wait blocks until the commit is hardened per the database's sync
// policy and returns the outcome. A non-nil error means the log went
// fail-stop underneath an acknowledged commit: its effects are visible
// in memory but may not have reached disk. Call at most once — the
// ticket is pooled and recycled by its first Wait.
func (f Future) Wait() error { return f.f.Wait() }

// WaitCtx is Wait bounded by ctx; call at most once, like Wait. A
// cancellation cannot unsequence the commit — it returns an
// IsUnackedCommit error (the commit will still harden with its batch;
// a background drainer recycles the ticket) wrapping ctx's error.
func (f Future) WaitCtx(ctx context.Context) error {
	err := f.f.WaitDone(ctx.Done())
	if errors.Is(err, wal.ErrWaitCanceled) {
		return fmt.Errorf("%w: %w", txn.ErrUnackedCommit, ctx.Err())
	}
	return err
}

// UpdateAsync is Update with a pipelined commit: it returns as soon as
// the transaction's commit record is sequenced in the log — the session
// can immediately run its next transaction while the group commit's
// fsync is in flight — together with a Future that resolves when the
// commit is durable. Transactions still serialize through strict 2PL,
// and a conflicting transaction can only commit after this one, so the
// durable log prefix is always conflict-consistent; what UpdateAsync
// relaxes is only *when the caller learns* the commit reached disk.
// Close, Sync and Checkpoint all drain outstanding futures.
func (d *Database) UpdateAsync(fn func(*Txn) error) (Future, error) {
	fut, err := d.db.RunWithRetryPipelined(func(tx *txn.Txn) error {
		return fn(&Txn{db: d, tx: tx})
	})
	return Future{f: fut}, err
}

// UpdateAsyncCtx is UpdateAsync honoring ctx before each attempt,
// during lock waits and across the retry backoff. The returned Future
// is not bound to ctx — the commit is already sequenced when
// UpdateAsyncCtx returns, so only the wait itself can still be bounded:
// use Future.WaitCtx. This is the serving layer's workhorse: one
// group-commit fsync amortizes across every session with a future in
// flight.
func (d *Database) UpdateAsyncCtx(ctx context.Context, fn func(*Txn) error) (Future, error) {
	fut, err := d.db.RunWithRetryPipelinedCtx(ctx, func(tx *txn.Txn) error {
		return fn(&Txn{db: d, tx: tx})
	})
	return Future{f: fut}, err
}

// Sync is a durability barrier: it blocks until every commit
// acknowledged so far — including UpdateAsync commits whose futures
// have not been waited on — is fsynced, whatever the sync policy.
// No-op for a volatile database.
func (d *Database) Sync() error { return d.db.Sync() }

// Commit makes the transaction durable and releases its locks.
func (t *Txn) Commit() error { return t.tx.Commit() }

// Abort rolls back and releases locks.
func (t *Txn) Abort() { t.tx.Abort() }

// New creates an instance of class, with fields initialised positionally
// from Go values (int/int64, bool, string, OID).
func (t *Txn) New(class string, fieldValues ...any) (OID, error) {
	vals, err := toValues(fieldValues)
	if err != nil {
		return 0, err
	}
	in, err := t.db.db.NewInstance(t.tx, class, vals...)
	if err != nil {
		return 0, err
	}
	return in.OID, nil
}

// Delete removes an object. The deletion conflicts with any concurrent
// access to the object; aborting the transaction restores it.
func (t *Txn) Delete(oid OID) error {
	return t.db.db.DeleteInstance(t.tx, oid)
}

// Send delivers a message to an object and returns the method's result
// (int64, bool, string or OID; int64(0) for value-less returns).
func (t *Txn) Send(oid OID, method string, args ...any) (any, error) {
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	out, err := t.db.db.Send(t.tx, oid, method, vals...)
	if err != nil {
		return nil, err
	}
	return fromValue(out), nil
}

// SendCtx is Send honoring ctx for the duration of this one send: a
// cancellation withdraws any queued lock wait and fails the send with
// an error satisfying IsCanceled. The binding is scoped — it restores
// the transaction's previous cancellation channel on return — so a
// server can run one long transaction while bounding each command
// individually. Note the failed send poisons the transaction the same
// way any other send error does: the caller should abort (or, under
// Update/UpdateCtx, return the error).
func (t *Txn) SendCtx(ctx context.Context, oid OID, method string, args ...any) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prev := t.tx.BindDone(ctx.Done())
	out, err := t.Send(oid, method, args...)
	t.tx.BindDone(prev)
	return out, err
}

// ScanSend delivers a message to the instances of the domain rooted at
// class — the paper's accesses (ii)–(iv). With hierarchical=true the
// classes are locked as wholes and no instance locks are taken. It
// returns the number of instances visited.
func (t *Txn) ScanSend(class, method string, hierarchical bool, args ...any) (int, error) {
	vals, err := toValues(args)
	if err != nil {
		return 0, err
	}
	return t.db.db.DomainScan(t.tx, class, method, hierarchical, nil, vals...)
}

// Stats aggregates lock-manager, transaction, engine and WAL counters.
type Stats struct {
	LockRequests        int64
	Blocks              int64
	Deadlocks           int64
	EscalationDeadlocks int64
	Upgrades            int64
	Timeouts            int64
	ImmediateGrants     int64
	Reentrant           int64
	Releases            int64
	Committed           int64
	Aborted             int64
	Retries             int64
	Snapshots           int64
	TopSends            int64
	NestedSends         int64

	// WAL counters: zero on a volatile database.
	WALRecords     int64
	WALBatches     int64
	WALFsyncs      int64
	WALBytes       int64
	WALCheckpoints int64
}

// Stats returns cumulative counters for the database.
func (d *Database) Stats() Stats {
	ls := d.db.Locks().Snapshot()
	ts := d.db.Txns.Snapshot()
	es := d.db.Snapshot()
	s := Stats{
		LockRequests:        ls.Requests,
		Blocks:              ls.Blocks,
		Deadlocks:           ls.Deadlocks,
		EscalationDeadlocks: ls.EscalationDeadlocks,
		Upgrades:            ls.Upgrades,
		Timeouts:            ls.Timeouts,
		ImmediateGrants:     ls.ImmediateGrants,
		Reentrant:           ls.Reentrant,
		Releases:            ls.Releases,
		Committed:           ts.Committed,
		Aborted:             ts.Aborted,
		Retries:             ts.Retries,
		Snapshots:           ts.Snapshots,
		TopSends:            es.TopSends,
		NestedSends:         es.NestedSends,
	}
	if w := d.db.Txns.WAL(); w != nil {
		ws := w.Stats()
		s.WALRecords = ws.Records
		s.WALBatches = ws.Batches
		s.WALFsyncs = ws.Fsyncs
		s.WALBytes = ws.Bytes
		s.WALCheckpoints = ws.Checkpoints
	}
	return s
}

// ResetStats zeroes the lock, transaction and engine counters (the WAL
// counters are cumulative log totals and are not reset).
func (d *Database) ResetStats() {
	d.db.Locks().ResetStats()
	d.db.Txns.ResetStats()
	d.db.ResetStats()
}

// Metrics returns the database's metrics registry — per-method latency
// histograms, abort/deadlock counters, WAL and MVCC telemetry — or nil
// when the database was opened with NoMetrics. The registry snapshots
// without stopping writers; render it with WriteMetrics/MetricsJSON or
// mount it with DebugHandler.
func (d *Database) Metrics() *obs.Registry { return d.db.Metrics() }

// WriteMetrics renders the full metrics registry in Prometheus text
// exposition format (histograms as summaries with p50/p95/p99, _sum and
// _count; durations in seconds). No-op under NoMetrics.
func (d *Database) WriteMetrics(w io.Writer) error { return d.db.WriteMetrics(w) }

// MetricsJSON renders the registry as one flat expvar-style JSON
// object. No-op under NoMetrics.
func (d *Database) MetricsJSON(w io.Writer) error {
	reg := d.db.Metrics()
	if reg == nil {
		return nil
	}
	return reg.WriteJSON(w)
}

// SlowTxn is a captured slow-transaction trace (see SlowTxns).
type SlowTxn = obs.SlowTxn

// SetSlowTxnThreshold arms (or re-tunes) the transaction flight
// recorder at run time; zero disarms it. While armed, every transaction
// traces its events into a fixed in-transaction buffer (no allocation),
// and completions at or above the threshold are captured.
func (d *Database) SetSlowTxnThreshold(threshold time.Duration) {
	d.db.SetSlowTxnThreshold(threshold)
}

// SlowTxns returns the flight recorder's captured transactions, newest
// first: transaction ID, total latency, and the typed event trace
// (begin, lock waits over their resource, abort with reason, commit
// epoch, fsync wait). Empty until the recorder is armed and a slow
// transaction completes.
func (d *Database) SlowTxns() []SlowTxn { return d.db.SlowTxns() }

// DebugHandler returns an http.Handler exposing the observability
// surface — /metrics (Prometheus), /vars (JSON), /slowtxns, and
// /debug/pprof/* — for favcc/favbench's opt-in debug listener. Nothing
// starts a server unless the caller mounts this.
func (d *Database) DebugHandler() http.Handler {
	reg := d.db.Metrics()
	if reg == nil {
		reg = obs.NewRegistry() // NoMetrics: serve an empty page, not a panic
	}
	return obs.NewDebugHandler(reg, d.db.Flight())
}

// DumpObject writes a labelled snapshot of an object's fields, for
// debugging and examples.
func (d *Database) DumpObject(w io.Writer, oid OID) error {
	in, ok := d.db.Store.Get(oid)
	if !ok {
		return fmt.Errorf("oodb: no object %d", oid)
	}
	fmt.Fprintf(w, "%s#%d {", in.Class.Name, oid)
	for i, f := range in.Class.Fields {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%s: %s", f.Name, in.Get(i))
	}
	fmt.Fprintln(w, "}")
	return nil
}

func toValues(args []any) ([]storage.Value, error) {
	out := make([]storage.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			out[i] = storage.IntV(int64(v))
		case int64:
			out[i] = storage.IntV(v)
		case bool:
			out[i] = storage.BoolV(v)
		case string:
			out[i] = storage.StrV(v)
		case OID:
			out[i] = storage.RefV(v)
		default:
			return nil, fmt.Errorf("oodb: unsupported argument type %T", a)
		}
	}
	return out, nil
}

func fromValue(v storage.Value) any {
	switch v.Kind {
	case storage.KInt:
		return v.I
	case storage.KBool:
		return v.B
	case storage.KString:
		return v.S
	case storage.KRef:
		return v.R
	}
	return nil
}

package oodb_test

import (
	"fmt"
	"log"

	"repro/oodb"
)

// The schema used by the examples: a counter with two independent
// concerns, the count and a label.
const exampleSchema = `
class counter is
    instance variables are
        label : string
        n     : integer
    method incr(d) is
        n := n + d
    end
    method relabel(s) is
        label := s
    end
    method value is
        return n
    end
end`

// Compile derives per-method access vectors and a commutativity table.
func ExampleCompile() {
	schema, err := oodb.Compile(exampleSchema)
	if err != nil {
		log.Fatal(err)
	}
	av, _ := schema.AccessVector("counter", "incr")
	fmt.Println(av)
	ok, _ := schema.Commute("counter", "incr", "relabel")
	fmt.Println(ok)
	ok, _ = schema.Commute("counter", "incr", "value")
	fmt.Println(ok)
	// Output:
	// (Null label, Write n)
	// true
	// false
}

// Update runs a transaction with commit, rollback and deadlock retries
// handled by the database.
func ExampleDatabase_Update() {
	schema, err := oodb.Compile(exampleSchema)
	if err != nil {
		log.Fatal(err)
	}
	db, err := oodb.Open(schema, oodb.Fine)
	if err != nil {
		log.Fatal(err)
	}
	var counter oodb.OID
	err = db.Update(func(tx *oodb.Txn) error {
		counter, err = tx.New("counter", "requests", 0)
		if err != nil {
			return err
		}
		if _, err := tx.Send(counter, "incr", 41); err != nil {
			return err
		}
		_, err = tx.Send(counter, "incr", 1)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	var v any
	_ = db.Update(func(tx *oodb.Txn) error {
		v, err = tx.Send(counter, "value")
		return err
	})
	fmt.Println(v)
	// Output:
	// 42
}

// CommutativityTable renders the class's relation in the layout of the
// paper's Table 2.
func ExampleSchema_CommutativityTable() {
	schema, err := oodb.Compile(exampleSchema)
	if err != nil {
		log.Fatal(err)
	}
	tbl, _ := schema.CommutativityTable("counter")
	fmt.Print(tbl)
	// relabel conflicts with itself (two writers of label), commutes
	// with everything that leaves label alone.
	// Output:
	//         incr relabel   value
	//     incr      no     yes      no
	//  relabel     yes      no     yes
	//    value      no     yes     yes
}

package oodb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The oodb-level durability suite exercises the public API end to end:
// Open(..., Durable(dir)) → workload → Close → reopen recovers, plus
// the fault-injection paths (kill after N bytes, torn final record,
// double replay) the ISSUE requires.

const bankingSrc = `
class account is
    instance variables are
        number  : integer
        owner   : string
        balance : integer
        flagged : boolean
    method deposit(n) is
        balance := balance + n
    end
    method withdraw(n) is
        if n <= balance then
            balance := balance - n
        end
        return balance
    end
    method getbalance is
        return balance
    end
    method rename(who) is
        owner := who
    end
end

class savings inherits account is
    instance variables are
        ratepct : integer
    method accrue is
        send deposit(balance * ratepct / 100) to self
    end
end

class checking inherits account is
    instance variables are
        overdraft : integer
    method withdraw(n) is redefined as
        if n <= balance + overdraft then
            balance := balance - n
        end
        return balance
    end
end
`

const cadSrc = `
class part is
    instance variables are
        partno   : integer
        geometry : integer
        revision : integer
        checked  : boolean
    method inspect(work) is
        var i := 0
        var acc := 0
        while i < work do
            i := i + 1
            acc := acc + geometry * i
        end
        return acc
    end
    method revise(delta) is
        geometry := geometry + delta
        revision := revision + 1
        checked := false
    end
    method approve is
        checked := true
    end
end

class assembly inherits part is
    instance variables are
        children : integer
    method addchild is
        children := children + 1
    end
end
`

// dumpAll renders every OID in [1, maxOID] (or its absence) so two
// databases can be diffed byte-for-byte.
func dumpAll(t *testing.T, db *Database, maxOID OID) string {
	t.Helper()
	var buf bytes.Buffer
	for oid := OID(1); oid <= maxOID; oid++ {
		if err := db.DumpObject(&buf, oid); err != nil {
			fmt.Fprintf(&buf, "#%d: absent\n", oid)
		}
	}
	return buf.String()
}

// runGoldenWorkload drives the same deterministic op mix against each
// database in dbs (a durable one and its volatile mirror).
func runGoldenWorkload(t *testing.T, seed int64, dbs ...*Database) OID {
	t.Helper()
	var maxOID OID
	for _, db := range dbs {
		rng := rand.New(rand.NewSource(seed))
		var accounts []OID
		err := db.Update(func(tx *Txn) error {
			for i := 0; i < 12; i++ {
				cls := "savings"
				if i%2 == 1 {
					cls = "checking"
				}
				oid, err := tx.New(cls, int64(1000+i), fmt.Sprintf("owner-%d", i), int64(100))
				if err != nil {
					return err
				}
				accounts = append(accounts, oid)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 200; op++ {
			oid := accounts[rng.Intn(len(accounts))]
			err := db.Update(func(tx *Txn) error {
				switch rng.Intn(4) {
				case 0:
					_, err := tx.Send(oid, "deposit", int64(rng.Intn(50)))
					return err
				case 1:
					_, err := tx.Send(oid, "withdraw", int64(rng.Intn(80)))
					return err
				case 2:
					_, err := tx.Send(oid, "rename", fmt.Sprintf("holder-%d", op))
					return err
				default:
					_, err := tx.ScanSend("account", "getbalance", false)
					return err
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		// Churn: delete one account, abort a delete of another.
		if err := db.Update(func(tx *Txn) error { return tx.Delete(accounts[2]) }); err != nil {
			t.Fatal(err)
		}
		tx := db.Begin()
		if err := tx.Delete(accounts[4]); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Send(accounts[5], "deposit", int64(1_000_000)); err != nil {
			t.Fatal(err)
		}
		tx.Abort()
		maxOID = accounts[len(accounts)-1]
	}
	return maxOID
}

// The golden recovery test: a durable database and a volatile mirror
// run the identical banking workload; after close + crash recovery the
// durable one's objects are byte-identical to the mirror's.
func TestRecoveryGoldenBanking(t *testing.T) {
	schema, err := Compile(bankingSrc, WithCommuting("account", "deposit", "deposit"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	durable, err := Open(schema, Fine, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := Open(schema, Fine)
	if err != nil {
		t.Fatal(err)
	}
	maxOID := runGoldenWorkload(t, 7, durable, mirror)
	want := dumpAll(t, durable, maxOID)
	if got := dumpAll(t, mirror, maxOID); got != want {
		t.Fatalf("mirror diverged from durable before close:\n%s\nvs\n%s", got, want)
	}
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(schema, Fine, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := dumpAll(t, recovered, maxOID); got != want {
		t.Fatalf("recovered state differs from live state:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if recovered.Recovery().RecordsApplied == 0 {
		t.Fatal("recovery applied no records")
	}
}

// Same golden discipline on the CAD example, with a checkpoint in the
// middle so recovery exercises checkpoint + log tail through the
// public API.
func TestRecoveryGoldenCAD(t *testing.T) {
	schema, err := Compile(cadSrc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	durable, err := Open(schema, Fine, Durable(dir), GroupCommitWindow(50*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := Open(schema, Fine)
	if err != nil {
		t.Fatal(err)
	}
	var maxOID OID
	for _, db := range []*Database{durable, mirror} {
		var parts []OID
		if err := db.Update(func(tx *Txn) error {
			for i := 0; i < 10; i++ {
				cls := "part"
				if i%3 == 0 {
					cls = "assembly"
				}
				oid, err := tx.New(cls, int64(i), int64(50+i))
				if err != nil {
					return err
				}
				parts = append(parts, oid)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 60; op++ {
			oid := parts[op%len(parts)]
			if err := db.Update(func(tx *Txn) error {
				if _, err := tx.Send(oid, "revise", int64(op%5)); err != nil {
					return err
				}
				_, err := tx.Send(oid, "approve")
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if op == 30 {
				if err := db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		maxOID = parts[len(parts)-1]
	}
	want := dumpAll(t, durable, maxOID)
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(schema, Fine, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if !recovered.Recovery().Checkpoint {
		t.Fatal("recovery did not load the checkpoint")
	}
	if got := dumpAll(t, recovered, maxOID); got != want {
		t.Fatalf("recovered CAD state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Crash simulation through the public API: the log is cut at every
// record boundary and at torn mid-record positions; every recovery
// yields exactly the committed prefix — all-or-nothing per transaction,
// proven by a two-field invariant written in one method.
func TestRecoveryPublicAPICrashAtBoundaries(t *testing.T) {
	const pairSrc = `
class pair is
    instance variables are
        a : integer
        b : integer
    method setpair(n) is
        a := n
        b := n
    end
    method geta is
        return a
    end
    method getb is
        return b
    end
end
`
	schema, err := Compile(pairSrc)
	if err != nil {
		t.Fatal(err)
	}
	srcDir := t.TempDir()
	db, err := Open(schema, Fine, Durable(srcDir))
	if err != nil {
		t.Fatal(err)
	}
	const nPairs = 4
	var pairs []OID
	if err := db.Update(func(tx *Txn) error {
		for i := 0; i < nPairs; i++ {
			oid, err := tx.New("pair")
			if err != nil {
				return err
			}
			pairs = append(pairs, oid)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		oid := pairs[i%nPairs]
		if err := db.Update(func(tx *Txn) error {
			_, err := tx.Send(oid, "setpair", int64(i))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segName := "wal-000001.log"
	data, err := os.ReadFile(filepath.Join(srcDir, segName))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries from the frame headers (u32 len + u32 crc).
	bounds := []int64{0}
	for pos := int64(0); pos < int64(len(data)); {
		size := binary.LittleEndian.Uint32(data[pos:])
		pos += 8 + int64(size)
		bounds = append(bounds, pos)
	}
	cuts := append([]int64{}, bounds...)
	for _, b := range bounds[1:] {
		cuts = append(cuts, b-3) // torn mid-record
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		crashed, err := Open(schema, Fine, Durable(dir))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		complete := 0
		for complete+1 < len(bounds) && bounds[complete+1] <= cut {
			complete++
		}
		if got := crashed.Recovery().RecordsApplied; got != int64(complete) {
			t.Fatalf("cut %d: applied %d records, want %d", cut, got, complete)
		}
		// Transaction atomicity: both fields of every pair always agree,
		// whatever prefix survived.
		if err := crashed.Update(func(tx *Txn) error {
			for _, oid := range pairs {
				if complete == 0 {
					break // creates not recovered: instances absent
				}
				a, err := tx.Send(oid, "geta")
				if err != nil {
					return err
				}
				b, err := tx.Send(oid, "getb")
				if err != nil {
					return err
				}
				if a != b {
					t.Errorf("cut %d: pair %d torn: a=%v b=%v", cut, oid, a, b)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := crashed.Close(); err != nil {
			t.Fatal(err)
		}
		// Recover the same directory again: double replay is a no-op.
		again, err := Open(schema, Fine, Durable(dir))
		if err != nil {
			t.Fatal(err)
		}
		if got := again.Recovery().RecordsApplied; got != int64(complete) {
			t.Fatalf("cut %d: second recovery applied %d records, want %d", cut, got, complete)
		}
		if complete > 0 {
			want := dumpAll(t, crashed, pairs[len(pairs)-1])
			if got := dumpAll(t, again, pairs[len(pairs)-1]); got != want {
				t.Fatalf("cut %d: double replay diverged", cut)
			}
		}
		again.Close()
	}
}

// Durable throughput under concurrency through the public API: many
// goroutines commit concurrently, everything acknowledged survives.
func TestRecoveryConcurrentCommitsSurvive(t *testing.T) {
	schema, err := Compile(bankingSrc, WithCommuting("account", "deposit", "deposit"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db, err := Open(schema, Fine, Durable(dir), GroupCommitWindow(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	var acct OID
	if err := db.Update(func(tx *Txn) error {
		var err error
		acct, err = tx.New("savings", int64(1), "shared", int64(0))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const depositsEach = 25
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < depositsEach; i++ {
				if err := db.Update(func(tx *Txn) error {
					_, err := tx.Send(acct, "deposit", int64(1))
					return err
				}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(schema, Fine, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	var got any
	if err := recovered.Update(func(tx *Txn) error {
		var err error
		got, err = tx.Send(acct, "getbalance")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != int64(workers*depositsEach) {
		t.Fatalf("recovered balance %v, want %d", got, workers*depositsEach)
	}
}

// UpdateAsync through the public API: pipelined sessions, futures
// resolve durable, and a golden diff against a volatile mirror after
// recovery — plus the everysec policy, whose Close hardens the tail.
func TestRecoveryUpdateAsyncGolden(t *testing.T) {
	schema, err := Compile(bankingSrc, WithCommuting("account", "deposit", "deposit"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	durable, err := Open(schema, Fine, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := Open(schema, Fine)
	if err != nil {
		t.Fatal(err)
	}
	var accounts []OID
	for _, db := range []*Database{durable, mirror} {
		accts := []OID{}
		if err := db.Update(func(tx *Txn) error {
			for i := 0; i < 8; i++ {
				oid, err := tx.New("savings", int64(i), fmt.Sprintf("o%d", i), int64(50))
				if err != nil {
					return err
				}
				accts = append(accts, oid)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		accounts = accts
	}
	var futures []Future
	for op := 0; op < 150; op++ {
		oid := accounts[op%len(accounts)]
		amount := int64(op % 13)
		fut, err := durable.UpdateAsync(func(tx *Txn) error {
			_, err := tx.Send(oid, "deposit", amount)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, fut)
		if err := mirror.Update(func(tx *Txn) error {
			_, err := tx.Send(oid, "deposit", amount)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := durable.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, fut := range futures {
		if err := fut.Wait(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	var zero Future
	if err := zero.Wait(); err != nil {
		t.Fatalf("zero Future: %v", err)
	}
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(schema, Fine, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	maxOID := accounts[len(accounts)-1]
	if got, want := dumpAll(t, recovered, maxOID), dumpAll(t, mirror, maxOID); got != want {
		t.Fatalf("UpdateAsync recovery diverged:\n%s\nvs\n%s", got, want)
	}
}

// The everysec sync policy through the public API: commits are
// acknowledged without a per-batch fsync, Close hardens the tail, and
// everything acknowledged before a clean Close recovers.
func TestRecoverySyncEveryPolicy(t *testing.T) {
	schema, err := Compile(bankingSrc, WithCommuting("account", "deposit", "deposit"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db, err := Open(schema, Fine, Durable(dir), SyncEvery(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var oid OID
	if err := db.Update(func(tx *Txn) error {
		var err error
		oid, err = tx.New("savings", int64(1), "eve", int64(10))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := db.Update(func(tx *Txn) error {
			_, err := tx.Send(oid, "deposit", int64(1))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(schema, Fine, Durable(dir), SyncEvery(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	var buf bytes.Buffer
	if err := recovered.DumpObject(&buf, oid); err != nil {
		t.Fatal(err)
	}
	if want := "balance: 50"; !strings.Contains(buf.String(), want) {
		t.Fatalf("recovered object %q, want %q", buf.String(), want)
	}
}

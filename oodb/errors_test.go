package oodb

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/txn"
	"repro/internal/wal"
)

// The taxonomy's contract: ErrorCode classifies every sentinel the
// engine can surface, a reconstructed &Error{Code} satisfies exactly
// the predicates the original error did, and codes survive a
// marshal/unmarshal round trip (they are the wire format).
func TestErrorCodeClassification(t *testing.T) {
	cases := []struct {
		err  error
		want Code
	}{
		{nil, CodeOK},
		{lock.ErrTimeout, CodeTimeout},
		{lock.ErrCanceled, CodeCanceled},
		{txn.ErrSnapshotWrite, CodeSnapshotWrite},
		{txn.ErrReadOnly, CodeReadOnly},
		{wal.ErrDiskFull, CodeDiskFull},
		{wal.ErrWaitCanceled, CodeCanceled},
		{context.Canceled, CodeCanceled},
		{context.DeadlineExceeded, CodeCanceled},
		{errors.New("anything else"), CodeOther},
		{fmt.Errorf("wrapped: %w", lock.ErrTimeout), CodeTimeout},
		{fmt.Errorf("wrapped: %w", wal.ErrDiskFull), CodeDiskFull},
	}
	for _, c := range cases {
		if got := ErrorCode(c.err); got != c.want {
			t.Errorf("ErrorCode(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestErrorCodeRoundTrip(t *testing.T) {
	// A client reconstructs errors as &Error{Code, Msg}. For every code,
	// the reconstruction must hit the same predicate as the original,
	// and re-deriving the code must be lossless.
	preds := map[Code]func(error) bool{
		CodeDeadlock:      IsDeadlock,
		CodeTimeout:       IsTimeout,
		CodeReadOnly:      IsReadOnly,
		CodeDiskFull:      IsDiskFull,
		CodeSnapshotWrite: IsSnapshotWrite,
		CodeCanceled:      IsCanceled,
	}
	for code, pred := range preds {
		e := &Error{Code: code, Msg: "remote: " + code.String()}
		if !pred(e) {
			t.Errorf("&Error{%v} fails its own predicate", code)
		}
		if got := ErrorCode(e); got != code {
			t.Errorf("ErrorCode(&Error{%v}) = %v", code, got)
		}
		if got := ErrorCode(fmt.Errorf("wrapped: %w", e)); got != code {
			t.Errorf("ErrorCode(wrapped &Error{%v}) = %v", code, got)
		}
		// No cross-talk with the other specific predicates.
		for other, otherPred := range preds {
			if other == code {
				continue
			}
			// DiskFull implies ReadOnly by design: the log is wedged.
			if code == CodeDiskFull && other == CodeReadOnly {
				if !otherPred(e) {
					t.Errorf("CodeDiskFull must satisfy IsReadOnly")
				}
				continue
			}
			if otherPred(e) {
				t.Errorf("&Error{%v} satisfies %v's predicate too", code, other)
			}
		}
	}
	if ErrorCode(&Error{Code: CodeOther, Msg: "x"}) != CodeOther {
		t.Error("CodeOther does not round trip")
	}
}

// The numeric values are the wire format: reordering the enum would
// make old clients misclassify new servers' errors.
func TestErrorCodeWireStability(t *testing.T) {
	pinned := map[Code]uint8{
		CodeOK: 0, CodeDeadlock: 1, CodeTimeout: 2, CodeReadOnly: 3,
		CodeDiskFull: 4, CodeSnapshotWrite: 5, CodeCanceled: 6, CodeOther: 7,
	}
	for code, val := range pinned {
		if uint8(code) != val {
			t.Errorf("%v = %d, pinned wire value %d", code, uint8(code), val)
		}
	}
}

func TestErrorMessage(t *testing.T) {
	e := &Error{Code: CodeDeadlock, Msg: "victim of cycle"}
	if e.Error() != "victim of cycle" {
		t.Errorf("Error() = %q", e.Error())
	}
	if (&Error{Code: CodeTimeout}).Error() == "" {
		t.Error("empty Msg must still render something")
	}
}

func TestOptionsSyncConflict(t *testing.T) {
	schema, err := Compile("class c is instance variables are x : integer end")
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.SyncEvery = time.Millisecond
	o.SyncNever = true
	if _, err := OpenWith(schema, Fine, o); err == nil {
		t.Fatal("SyncEvery+SyncNever accepted")
	}
}

// OpenWith maps the struct onto the same open options; a database
// opened either way behaves identically for a basic roundtrip, and the
// deprecated RelaxedSync still aliases SyncNever.
func TestOptionsOpenWith(t *testing.T) {
	schema, err := Compile("class c is instance variables are x : integer end")
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Dir = t.TempDir()
	o.GroupCommitWindow = 100 * time.Microsecond
	o.SyncNever = true
	o.SlowTxnThreshold = time.Second
	db, err := OpenWith(schema, Fine, o)
	if err != nil {
		t.Fatal(err)
	}
	var oid OID
	if err := db.Update(func(tx *Txn) error {
		oid, err = tx.New("c", int64(5))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with the deprecated spelling: same directory recovers.
	db2, err := Open(schema, Fine, Durable(o.Dir), RelaxedSync())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.View(func(tx *Txn) error {
		if _, err := tx.Send(oid, "x"); err == nil {
			t.Error("field read as method should fail") // sanity: schema has no methods
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

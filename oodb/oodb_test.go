package oodb

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/paperex"
)

func compileFig1(t *testing.T, opts ...Option) *Schema {
	t.Helper()
	s, err := Compile(paperex.Figure1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompileAndIntrospect(t *testing.T) {
	s := compileFig1(t)
	if got := s.Classes(); len(got) != 3 || got[0] != "c1" {
		t.Errorf("Classes = %v", got)
	}
	if got := s.Methods("c2"); strings.Join(got, ",") != "m1,m2,m3,m4" {
		t.Errorf("Methods(c2) = %v", got)
	}
	if got := s.Fields("c2"); strings.Join(got, ",") != "f1,f2,f3,f4,f5,f6" {
		t.Errorf("Fields(c2) = %v", got)
	}
	av, err := s.AccessVector("c2", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if av != "(Write f1, Read f2, Read f3, Write f4, Read f5, Null f6)" {
		t.Errorf("AccessVector(c2,m1) = %s", av)
	}
	if ok, _ := s.Commute("c2", "m2", "m4"); !ok {
		t.Error("m2/m4 must commute")
	}
	if ok, _ := s.Commute("c2", "m1", "m2"); ok {
		t.Error("m1/m2 must conflict")
	}
	tbl, err := s.CommutativityTable("c2")
	if err != nil || !strings.Contains(tbl, "m4") {
		t.Errorf("table: %v\n%s", err, tbl)
	}
	dot, err := s.ResolutionGraphDot("c2")
	if err != nil || !strings.Contains(dot, "c2_m1 -> c2_m2") {
		t.Errorf("dot: %v\n%s", err, dot)
	}
}

func TestIntrospectionErrors(t *testing.T) {
	s := compileFig1(t)
	if _, err := s.AccessVector("zz", "m1"); err == nil {
		t.Error("unknown class")
	}
	if _, err := s.AccessVector("c1", "zz"); err == nil {
		t.Error("unknown method")
	}
	if _, err := s.Commute("zz", "a", "b"); err == nil {
		t.Error("unknown class commute")
	}
	if _, err := s.Commute("c1", "m1", "zz"); err == nil {
		t.Error("unknown method commute")
	}
	if _, err := s.CommutativityTable("zz"); err == nil {
		t.Error("unknown class table")
	}
	if _, err := s.ResolutionGraphDot("zz"); err == nil {
		t.Error("unknown class dot")
	}
	if s.Methods("zz") != nil || s.Fields("zz") != nil {
		t.Error("unknown class lists must be nil")
	}
}

func TestOpenUnknownStrategy(t *testing.T) {
	s := compileFig1(t)
	if _, err := Open(s, Strategy("bogus")); err == nil {
		t.Error("unknown strategy must fail")
	}
	if len(Strategies()) != 6 {
		t.Error("six strategies expected")
	}
	for _, s := range Strategies() {
		if _, err := Open(compileFig1(t), s); err != nil {
			t.Errorf("Open(%s): %v", s, err)
		}
	}
}

func TestUpdateSendRoundTrip(t *testing.T) {
	s := compileFig1(t)
	db, err := Open(s, Fine)
	if err != nil {
		t.Fatal(err)
	}
	var oid OID
	err = db.Update(func(tx *Txn) error {
		var err error
		oid, err = tx.New("c2", 5, false)
		if err != nil {
			return err
		}
		_, err = tx.Send(oid, "m2", 42)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.DumpObject(&buf, oid); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "c2#") || !strings.Contains(buf.String(), "f4:") {
		t.Errorf("dump = %s", buf.String())
	}
	if err := db.DumpObject(&buf, 999); err == nil {
		t.Error("dump of missing object must fail")
	}
}

func TestBeginCommitAbort(t *testing.T) {
	s := compileFig1(t)
	db, err := Open(s, Fine)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	oid, err := tx.New("c1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := db.Begin()
	if _, err := tx2.Send(oid, "m2", 1); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	// After the abort, f1 is back to 7.
	var buf bytes.Buffer
	if err := db.DumpObject(&buf, oid); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "f1: 7") {
		t.Errorf("abort did not restore f1: %s", buf.String())
	}
}

func TestArgumentConversions(t *testing.T) {
	s := compileFig1(t)
	db, _ := Open(s, Fine)
	err := db.Update(func(tx *Txn) error {
		c3, err := tx.New("c3")
		if err != nil {
			return err
		}
		// int, int64, bool, string, OID all convert.
		if _, err := tx.New("c2", int64(1), true, c3); err != nil {
			return err
		}
		if _, err := tx.New("c2", 1, false); err != nil {
			return err
		}
		_, err = tx.New("c2", 1, false, c3, 2, 3, "label")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Update(func(tx *Txn) error {
		_, err := tx.New("c1", 3.14)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "unsupported argument") {
		t.Errorf("float must be rejected: %v", err)
	}
}

func TestScanSend(t *testing.T) {
	s := compileFig1(t)
	db, _ := Open(s, Fine)
	err := db.Update(func(tx *Txn) error {
		for i := 0; i < 3; i++ {
			if _, err := tx.New("c1", i); err != nil {
				return err
			}
		}
		_, err := tx.New("c2", 9)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	err = db.Update(func(tx *Txn) error {
		var err error
		n, err = tx.ScanSend("c1", "m2", true, 5)
		return err
	})
	if err != nil || n != 4 {
		t.Fatalf("scan visited %d (%v), want 4", n, err)
	}

	// Non-hierarchical scans visit the same instances but lock them
	// individually instead of the classes as wholes.
	err = db.Update(func(tx *Txn) error {
		var err error
		n, err = tx.ScanSend("c1", "m3", false)
		return err
	})
	if err != nil || n != 4 {
		t.Fatalf("intentional scan visited %d (%v), want 4", n, err)
	}
}

func TestStatsAndReset(t *testing.T) {
	s := compileFig1(t)
	db, _ := Open(s, Fine)
	err := db.Update(func(tx *Txn) error {
		oid, err := tx.New("c2", 1, false)
		if err != nil {
			return err
		}
		_, err = tx.Send(oid, "m1", 2)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Committed != 1 || st.TopSends != 1 || st.NestedSends != 3 || st.LockRequests == 0 {
		t.Errorf("stats = %+v", st)
	}
	db.ResetStats()
	if st := db.Stats(); st.LockRequests != 0 || st.Committed != 0 {
		t.Errorf("reset failed: %+v", st)
	}
}

func TestWithCommuting(t *testing.T) {
	const src = `
class counter is
    instance variables are
        n : integer
    method incr(d) is
        n := n + d
    end
    method read is
        return n
    end
end`
	s, err := Compile(src, WithCommuting("counter", "incr", "incr"))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Commute("counter", "incr", "incr"); !ok {
		t.Error("escrow declaration must make incr self-commuting")
	}
	if ok, _ := s.Commute("counter", "incr", "read"); ok {
		t.Error("incr/read must still conflict")
	}

	// And it actually admits concurrent increments on one instance: no
	// transaction ever blocks. (Ad hoc commutativity asserts semantic
	// compatibility; physically atomic escrow journaling — O'Neil [20] —
	// is the application's responsibility, so the total is not asserted.)
	db, _ := Open(s, Fine)
	var oid OID
	if err := db.Update(func(tx *Txn) error {
		var err error
		oid, err = tx.New("counter", 0)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				err := db.Update(func(tx *Txn) error {
					_, err := tx.Send(oid, "incr", 1)
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var out any
	if err := db.Update(func(tx *Txn) error {
		var err error
		out, err = tx.Send(oid, "read")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n, ok := out.(int64); !ok || n < 1 || n > 100 {
		t.Errorf("counter = %v, want 1..100", out)
	}
	if st := db.Stats(); st.Blocks != 0 || st.Deadlocks != 0 {
		t.Errorf("escrow increments must not block each other: %+v", st)
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("class a is method m is x := 1 end end"); err == nil {
		t.Error("bad source must fail")
	}
}

func TestDeleteThroughFacade(t *testing.T) {
	s := compileFig1(t)
	db, _ := Open(s, Fine)
	var oid OID
	if err := db.Update(func(tx *Txn) error {
		var err error
		oid, err = tx.New("c1", 7)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Txn) error {
		return tx.Delete(oid)
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.DumpObject(&buf, oid); err == nil {
		t.Error("deleted object must be gone")
	}
	// Scans no longer see it.
	var n int
	if err := db.Update(func(tx *Txn) error {
		var err error
		n, err = tx.ScanSend("c1", "m2", true, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("scan visited %d, want 0", n)
	}
}

// View runs on the lock-free snapshot path: reads see committed state,
// writes of any kind are rejected with IsSnapshotWrite, and the whole
// transaction issues zero lock-table requests.
func TestViewSnapshotReads(t *testing.T) {
	s, err := Compile(`
class account is
    instance variables are
        balance : integer
    method deposit(n) is
        balance := balance + n
    end
    method getbalance is
        return balance
    end
end`)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(s, Fine)
	if err != nil {
		t.Fatal(err)
	}
	var acct OID
	if err := db.Update(func(tx *Txn) error {
		var err error
		acct, err = tx.New("account", int64(100))
		if err != nil {
			return err
		}
		_, err = tx.Send(acct, "deposit", int64(10))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	before := db.Stats()
	if err := db.View(func(tx *Txn) error {
		got, err := tx.Send(acct, "getbalance")
		if err != nil {
			return err
		}
		if got != int64(110) {
			t.Errorf("getbalance = %v, want 110", got)
		}
		if _, err := tx.Send(acct, "deposit", int64(1)); !IsSnapshotWrite(err) {
			t.Errorf("snapshot deposit err = %v", err)
		}
		if _, err := tx.New("account", int64(0)); !IsSnapshotWrite(err) {
			t.Errorf("snapshot New err = %v", err)
		}
		if err := tx.Delete(acct); !IsSnapshotWrite(err) {
			t.Errorf("snapshot Delete err = %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	if after.LockRequests != before.LockRequests {
		t.Errorf("View issued %d lock requests", after.LockRequests-before.LockRequests)
	}
	if after.Snapshots != before.Snapshots+1 {
		t.Errorf("Snapshots = %d, want %d", after.Snapshots, before.Snapshots+1)
	}
	// The rejected writes left nothing behind.
	if err := db.View(func(tx *Txn) error {
		got, err := tx.Send(acct, "getbalance")
		if got != int64(110) {
			t.Errorf("balance after rejected writes = %v, want 110", got)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

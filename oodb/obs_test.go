package oodb

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The public observability surface: Stats facade completeness, the
// ResetStats fix, Prometheus/JSON rendering, the slow-transaction
// recorder, and the debug handler CI smokes.

// obsDB opens a durable Fine database and commits enough traffic to
// move every layer's counters: sends, a snapshot read, a checkpoint.
func obsDB(t *testing.T) *Database {
	t.Helper()
	s := compileFig1(t)
	db, err := Open(s, Fine, Durable(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var oid OID
	err = db.Update(func(tx *Txn) error {
		var err error
		oid, err = tx.New("c2", int64(1), false)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.Update(func(tx *Txn) error {
			_, err := tx.Send(oid, "m1", int64(i))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.View(func(tx *Txn) error {
		_, err := tx.Send(oid, "m3")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestResetStatsResetsEngineCounters pins the satellite-1 fix: before
// it, ResetStats zeroed lock and txn counters but left the engine's
// TopSends/NestedSends climbing across experiment phases.
func TestResetStatsResetsEngineCounters(t *testing.T) {
	db := obsDB(t)
	st := db.Stats()
	if st.TopSends == 0 || st.NestedSends == 0 {
		t.Fatalf("warmup produced no sends: %+v", st)
	}
	db.ResetStats()
	st = db.Stats()
	if st.TopSends != 0 || st.NestedSends != 0 {
		t.Errorf("engine counters survived ResetStats: TopSends=%d NestedSends=%d",
			st.TopSends, st.NestedSends)
	}
	if st.LockRequests != 0 || st.Committed != 0 {
		t.Errorf("lock/txn counters survived ResetStats: %+v", st)
	}
}

// TestStatsFacadeFields pins the satellite-2 additions: the lock-manager
// fields Stats() used to drop and the WAL counters.
func TestStatsFacadeFields(t *testing.T) {
	db := obsDB(t)
	// Two sends to one instance in one transaction: the second top-level
	// lock request is a reentrant grant.
	if err := db.Update(func(tx *Txn) error {
		oid, err := tx.New("c2", int64(5), false)
		if err != nil {
			return err
		}
		if _, err := tx.Send(oid, "m4", int64(1), int64(2)); err != nil {
			return err
		}
		_, err = tx.Send(oid, "m4", int64(3), int64(4))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.ImmediateGrants == 0 {
		t.Error("ImmediateGrants not surfaced")
	}
	if st.Releases == 0 {
		t.Error("Releases not surfaced")
	}
	if st.Reentrant == 0 {
		t.Error("Reentrant not surfaced (m1 re-locks the instance for its nested sends)")
	}
	if st.WALRecords == 0 || st.WALBatches == 0 || st.WALFsyncs == 0 || st.WALBytes == 0 {
		t.Errorf("WAL counters not surfaced: %+v", st)
	}
	if st.WALCheckpoints == 0 {
		t.Error("WALCheckpoints not surfaced")
	}

	// Volatile database: WAL fields stay zero rather than panicking.
	vdb, err := Open(compileFig1(t), Fine)
	if err != nil {
		t.Fatal(err)
	}
	if st := vdb.Stats(); st.WALRecords != 0 || st.WALFsyncs != 0 {
		t.Errorf("volatile WAL counters = %+v", st)
	}
}

// TestWriteMetricsExposition is the acceptance check on the rendered
// text: per-method latency quantiles, WAL fsync/batch histograms, and
// MVCC version/watermark gauges, all in valid Prometheus form.
func TestWriteMetricsExposition(t *testing.T) {
	db := obsDB(t)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		// Per-method latency summary: quantiles + _sum/_count.
		`favcc_send_latency_seconds{class="c2",method="m1",quantile="0.5"}`,
		`favcc_send_latency_seconds{class="c2",method="m1",quantile="0.99"}`,
		`favcc_send_latency_seconds_count{class="c2",method="m1"}`,
		`favcc_send_latency_seconds_sum{class="c2",method="m1"}`,
		// The snapshot-path counter saw the View send.
		`favcc_snapshot_sends_total{class="c2",method="m3"}`,
		// WAL group-commit histograms.
		"# TYPE favcc_wal_fsync_seconds summary",
		`favcc_wal_fsync_seconds{quantile="0.5"}`,
		`favcc_wal_batch_records_count`,
		// MVCC gauges.
		"favcc_mvcc_versions_published_total",
		"favcc_mvcc_watermark_lag_epochs",
		"favcc_mvcc_active_snapshots",
		// Lock and txn counters.
		"favcc_lock_wait_seconds_count",
		`favcc_txns_total{outcome="committed"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	// Every HELP line pairs with a TYPE line; counters end in _total or
	// are summaries — structural sanity beyond substring checks lives in
	// obs's round-trip parser test.
	if c := strings.Count(text, "# HELP "); c == 0 || c != strings.Count(text, "# TYPE ") {
		t.Errorf("HELP/TYPE pairing broken: %d HELP lines", c)
	}

	// The m1 send count is exact: three committed updates.
	if !strings.Contains(text, `favcc_send_latency_seconds_count{class="c2",method="m1"} 3`) {
		t.Errorf("m1 send count line missing or wrong:\n%s", grepLines(text, "m1\"} "))
	}
}

func grepLines(text, needle string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, needle) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestMetricsJSON checks the expvar-style rendering parses as one flat
// JSON object with the expected key shapes.
func TestMetricsJSON(t *testing.T) {
	db := obsDB(t)
	var buf bytes.Buffer
	if err := db.MetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	h, ok := m[`favcc_send_latency_seconds{class="c2",method="m1"}`].(map[string]any)
	if !ok {
		t.Fatalf("m1 histogram object missing; keys: %d", len(m))
	}
	if h["count"].(float64) != 3 {
		t.Errorf("m1 count = %v", h["count"])
	}
	if _, ok := m["favcc_txns_total{outcome=\"committed\"}"]; !ok {
		t.Error("txns counter missing from JSON")
	}
}

// TestSlowTxns exercises the recorder end to end through the facade.
func TestSlowTxns(t *testing.T) {
	s := compileFig1(t)
	db, err := Open(s, Fine, SlowTxnThreshold(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	var oid OID
	if err := db.Update(func(tx *Txn) error {
		var err error
		oid, err = tx.New("c2", int64(1), false)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Txn) error {
		_, err := tx.Send(oid, "m1", int64(7))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	slow := db.SlowTxns()
	if len(slow) < 2 {
		t.Fatalf("captured %d slow txns, want ≥ 2", len(slow))
	}
	st := slow[0] // newest first: the m1 update
	if st.Elapsed <= 0 || len(st.Events) == 0 {
		t.Errorf("empty capture: %+v", st)
	}
	if st.Events[0].Kind.String() != "begin" {
		t.Errorf("first event = %v", st.Events[0])
	}
	db.SetSlowTxnThreshold(time.Hour)
	if err := db.Update(func(tx *Txn) error {
		_, err := tx.Send(oid, "m1", int64(8))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := db.SlowTxns(); len(got) != len(slow) {
		t.Errorf("hour threshold still captured: %d -> %d", len(slow), len(got))
	}
}

// TestNoMetricsOption checks the stripped mode: nil registry, no-op
// renderers, and a debug handler that serves rather than panics.
func TestNoMetricsOption(t *testing.T) {
	db, err := Open(compileFig1(t), Fine, NoMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if db.Metrics() != nil {
		t.Error("NoMetrics must leave Metrics() nil")
	}
	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("stripped WriteMetrics: err=%v len=%d", err, buf.Len())
	}
	if err := db.Update(func(tx *Txn) error {
		_, err := tx.New("c2", int64(1), false)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	db.DebugHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Errorf("stripped /metrics status %d", rr.Code)
	}
}

// TestDebugHandler is the CI smoke: every endpoint of the mounted
// debug surface answers 200 with plausible content.
func TestDebugHandler(t *testing.T) {
	db := obsDB(t)
	db.SetSlowTxnThreshold(time.Nanosecond)
	if err := db.Update(func(tx *Txn) error {
		_, err := tx.New("c1", int64(1), false)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	h := db.DebugHandler()
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rr.Code)
		}
		return rr
	}
	if body := get("/metrics").Body.String(); !strings.Contains(body, "favcc_send_latency_seconds") {
		t.Error("/metrics missing send-latency family")
	}
	var m map[string]any
	if err := json.Unmarshal(get("/vars").Body.Bytes(), &m); err != nil {
		t.Errorf("/vars is not JSON: %v", err)
	}
	if body := get("/slowtxns").Body.String(); !strings.Contains(body, "txn ") {
		t.Errorf("/slowtxns has no captures:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline").Body.String(); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

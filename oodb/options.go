package oodb

import (
	"time"
)

// Options groups every open option into one plain struct, so a server
// configuration (favserv's flags, a config file) maps 1:1 onto open
// options instead of assembling a functional-option slice. The zero
// value — what DefaultOptions returns — is a volatile database with
// full-sync semantics (moot while volatile), metrics on, and the flight
// recorder disarmed: exactly Open with no options.
//
// The sync policy is the tri-state the WAL implements:
//
//   - both SyncEvery and SyncNever unset (default): every acknowledged
//     commit batch is fsynced before its transactions release locks; a
//     crash at any point loses nothing acknowledged.
//   - SyncEvery = d > 0: commits are acknowledged after the buffered OS
//     write and the log fsyncs at most every d; power loss costs at
//     most the last d of acknowledged commits.
//   - SyncNever = true: acknowledged after the buffered write only (the
//     policy the deprecated RelaxedSync selected); a process crash
//     loses nothing, power loss may lose the most recent commits.
//
// Setting both SyncEvery and SyncNever is a configuration error.
type Options struct {
	// Dir, when non-empty, makes the database persistent under this
	// directory (the Durable open option): Open recovers any existing
	// checkpoint + redo-log tail and every later commit goes through
	// the write-ahead log.
	Dir string
	// GroupCommitWindow is how long the log's writer goroutine waits
	// for more concurrent commits to share one fsync (0: batch only
	// what is already queued).
	GroupCommitWindow time.Duration
	// CheckpointEveryBytes auto-compacts the log whenever the live
	// segment exceeds this size (0: only Database.Checkpoint compacts).
	CheckpointEveryBytes int64
	// SyncEvery bounds the durability loss window to d instead of
	// paying an fsync per commit batch (see the policy table above).
	SyncEvery time.Duration
	// SyncNever acknowledges commits after the buffered OS write.
	SyncNever bool
	// NoMetrics strips the observability registry: Metrics returns nil
	// and the instrumented hot paths reduce to a nil check.
	NoMetrics bool
	// SlowTxnThreshold arms the transaction flight recorder from the
	// start (0: disarmed until SetSlowTxnThreshold).
	SlowTxnThreshold time.Duration
}

// DefaultOptions returns the zero configuration Open uses with no
// options: volatile, full sync, metrics on.
func DefaultOptions() Options { return Options{} }

// opts converts the struct into the equivalent OpenOption slice.
func (o Options) opts() []OpenOption {
	var out []OpenOption
	if o.Dir != "" {
		out = append(out, Durable(o.Dir))
	}
	if o.GroupCommitWindow > 0 {
		out = append(out, GroupCommitWindow(o.GroupCommitWindow))
	}
	if o.CheckpointEveryBytes > 0 {
		out = append(out, CheckpointEvery(o.CheckpointEveryBytes))
	}
	if o.SyncEvery > 0 {
		out = append(out, SyncEvery(o.SyncEvery))
	}
	if o.SyncNever {
		out = append(out, SyncNever())
	}
	if o.NoMetrics {
		out = append(out, NoMetrics())
	}
	if o.SlowTxnThreshold > 0 {
		out = append(out, SlowTxnThreshold(o.SlowTxnThreshold))
	}
	return out
}

// OpenWith is Open taking the grouped Options struct instead of
// variadic options. The two forms are interchangeable; OpenWith is the
// natural fit for configuration that arrives as data (favserv flags, a
// config file).
func OpenWith(s *Schema, strategy Strategy, o Options) (*Database, error) {
	if o.SyncEvery > 0 && o.SyncNever {
		return nil, errSyncConflict
	}
	return Open(s, strategy, o.opts()...)
}

var errSyncConflict = &Error{Code: CodeOther, Msg: "oodb: Options.SyncEvery and Options.SyncNever are mutually exclusive"}

package oodb

import (
	"fmt"
	"testing"

	"repro/internal/wal"
)

// The fail-stop golden suites drive the public API onto a hostile disk:
// a reference run over a counting wal.FaultFS fixes the deterministic
// op sequence, then the same workload re-runs with an injected fsync
// error or a disk that fills up mid-session. The contract under test:
//
//   - the first failing commit (and every write after it) reports an
//     error matching IsReadOnly — and IsDiskFull exactly when the
//     cause was ENOSPC;
//   - no commit is ever acknowledged after one fails (fail-stop);
//   - Health() reports the degradation;
//   - reads keep serving the acknowledged prefix, byte-for-byte;
//   - reopening the directory on a healthy disk recovers exactly that
//     prefix and restores write service.

// failStopResult is what one hostile-disk workload observed.
type failStopResult struct {
	snapshot string // dumpAll at the last acknowledged commit
	objects  []OID
	maxOID   OID
	failedAt int   // first failed commit op (-1: none)
	ckptErr  error // mid-run checkpoint failure, when the workload takes one

	// read probes the transactional read path (a read-only method send)
	// on the workload's own schema.
	read func(tx *Txn) error
}

// pickOp returns the index of the middle op of the given kind — in the
// middle of the commit stream, past setup, before close.
func pickOp(t *testing.T, trace []wal.OpKind, kind wal.OpKind) int64 {
	t.Helper()
	var idxs []int64
	for i, k := range trace {
		if k == kind {
			idxs = append(idxs, int64(i))
		}
	}
	if len(idxs) < 8 {
		t.Fatalf("only %d ops of kind %v in reference trace", len(idxs), kind)
	}
	return idxs[len(idxs)/2]
}

// bankingFailStop runs the deterministic banking session, tolerating
// write failures once the disk turns hostile.
func bankingFailStop(t *testing.T, db *Database, enospc bool) failStopResult {
	t.Helper()
	var accounts []OID
	if err := db.Update(func(tx *Txn) error {
		for i := 0; i < 6; i++ {
			cls := "savings"
			if i%2 == 1 {
				cls = "checking"
			}
			oid, err := tx.New(cls, int64(100+i), fmt.Sprintf("owner-%d", i), int64(1000))
			if err != nil {
				return err
			}
			accounts = append(accounts, oid)
		}
		return nil
	}); err != nil {
		t.Fatalf("setup commit: %v", err)
	}
	res := failStopResult{objects: accounts, maxOID: accounts[len(accounts)-1], failedAt: -1}
	res.read = func(tx *Txn) error {
		_, err := tx.Send(accounts[0], "getbalance")
		return err
	}
	res.snapshot = dumpAll(t, db, res.maxOID)
	for op := 0; op < 30; op++ {
		oid := accounts[op%len(accounts)]
		err := db.Update(func(tx *Txn) error {
			switch op % 3 {
			case 0:
				_, err := tx.Send(oid, "deposit", int64(10+op))
				return err
			case 1:
				_, err := tx.Send(oid, "withdraw", int64(op))
				return err
			default:
				_, err := tx.Send(oid, "rename", fmt.Sprintf("holder-%d", op))
				return err
			}
		})
		if err != nil {
			if res.failedAt < 0 {
				res.failedAt = op
			}
			if !IsReadOnly(err) {
				t.Fatalf("op %d: failure not IsReadOnly: %v", op, err)
			}
			if enospc != IsDiskFull(err) {
				t.Fatalf("op %d: IsDiskFull=%v, want %v: %v", op, IsDiskFull(err), enospc, err)
			}
			continue
		}
		if res.failedAt >= 0 {
			t.Fatalf("op %d: commit acknowledged after fail-stop", op)
		}
		res.snapshot = dumpAll(t, db, res.maxOID)
	}
	return res
}

// cadFailStop is the CAD variant: revise+approve transactions with a
// checkpoint mid-run, so the fault can also land inside compaction.
func cadFailStop(t *testing.T, db *Database, enospc bool) failStopResult {
	t.Helper()
	var parts []OID
	if err := db.Update(func(tx *Txn) error {
		for i := 0; i < 5; i++ {
			cls := "part"
			if i%3 == 0 {
				cls = "assembly"
			}
			oid, err := tx.New(cls, int64(i), int64(50+i))
			if err != nil {
				return err
			}
			parts = append(parts, oid)
		}
		return nil
	}); err != nil {
		t.Fatalf("setup commit: %v", err)
	}
	res := failStopResult{objects: parts, maxOID: parts[len(parts)-1], failedAt: -1}
	res.read = func(tx *Txn) error {
		_, err := tx.Send(parts[0], "inspect", int64(3))
		return err
	}
	res.snapshot = dumpAll(t, db, res.maxOID)
	for op := 0; op < 24; op++ {
		if op == 10 {
			res.ckptErr = db.Checkpoint()
		}
		oid := parts[op%len(parts)]
		err := db.Update(func(tx *Txn) error {
			if _, err := tx.Send(oid, "revise", int64(op%5)); err != nil {
				return err
			}
			_, err := tx.Send(oid, "approve")
			return err
		})
		if err != nil {
			if res.failedAt < 0 {
				res.failedAt = op
			}
			if !IsReadOnly(err) {
				t.Fatalf("op %d: failure not IsReadOnly: %v", op, err)
			}
			if enospc != IsDiskFull(err) {
				t.Fatalf("op %d: IsDiskFull=%v, want %v: %v", op, IsDiskFull(err), enospc, err)
			}
			continue
		}
		if res.failedAt >= 0 {
			t.Fatalf("op %d: commit acknowledged after fail-stop", op)
		}
		res.snapshot = dumpAll(t, db, res.maxOID)
	}
	return res
}

func failStopGolden(t *testing.T, src string, workload func(*testing.T, *Database, bool) failStopResult, enospc bool) {
	t.Helper()
	schema, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	// Reference run: same workload, counting FS, no faults. Fixes the
	// deterministic op sequence the fault index is chosen from.
	ref := wal.NewFaultFS(nil, wal.FaultPlan{FailAt: -1})
	refDB, err := Open(schema, Fine, Durable(t.TempDir()), withFS(ref))
	if err != nil {
		t.Fatal(err)
	}
	refRes := workload(t, refDB, enospc)
	if refRes.failedAt >= 0 || refRes.ckptErr != nil {
		t.Fatalf("reference run saw failures: commit %d, ckpt %v", refRes.failedAt, refRes.ckptErr)
	}
	if err := refDB.Close(); err != nil {
		t.Fatal(err)
	}

	plan := wal.FaultPlan{Class: wal.FaultErr}
	if enospc {
		// A disk that fills up and stays full: the middle write and every
		// write after it fail with ENOSPC.
		plan = wal.FaultPlan{Class: wal.FaultENOSPC, Persist: true}
		plan.FailAt = pickOp(t, ref.Trace(), wal.KindWrite)
	} else {
		// One fsync fails mid-run; the device then behaves again — but the
		// log must stay latched anyway.
		plan.FailAt = pickOp(t, ref.Trace(), wal.KindSync)
	}

	dir := t.TempDir()
	db, err := Open(schema, Fine, Durable(dir), withFS(wal.NewFaultFS(nil, plan)))
	if err != nil {
		t.Fatal(err)
	}
	res := workload(t, db, enospc)
	if res.failedAt < 0 && res.ckptErr == nil {
		t.Fatal("fault never fired")
	}

	if res.failedAt >= 0 {
		h := db.Health()
		if !h.ReadOnly || h.Err == nil {
			t.Fatalf("Health after fail-stop = %+v", h)
		}
		if enospc != h.DiskFull {
			t.Fatalf("Health.DiskFull = %v, want %v (%v)", h.DiskFull, enospc, h.Err)
		}
	}

	// Degraded reads: the transactional read path and the dump must both
	// keep serving exactly the acknowledged prefix.
	if err := db.Update(res.read); err != nil {
		t.Fatalf("degraded transactional read failed: %v", err)
	}
	if got := dumpAll(t, db, res.maxOID); got != res.snapshot {
		t.Fatalf("degraded reads diverge from acknowledged state:\ngot:\n%s\nwant:\n%s", got, res.snapshot)
	}

	db.Close() //nolint:errcheck // a latched log reports its failure here

	// Reopen on a healthy disk: exactly the acknowledged prefix, and
	// write service restored.
	re, err := Open(schema, Fine, Durable(dir))
	if err != nil {
		t.Fatalf("reopen after fail-stop: %v", err)
	}
	defer re.Close()
	if h := re.Health(); h.ReadOnly {
		t.Fatalf("reopened database still degraded: %+v", h)
	}
	if got := dumpAll(t, re, res.maxOID); got != res.snapshot {
		t.Fatalf("reopen diverged from acknowledged prefix:\ngot:\n%s\nwant:\n%s", got, res.snapshot)
	}
	if err := re.Update(res.read); err != nil {
		t.Fatal(err)
	}
}

func TestFailStopGoldenBankingFsyncError(t *testing.T) {
	failStopGolden(t, bankingSrc, bankingFailStop, false)
}

func TestFailStopGoldenBankingENOSPC(t *testing.T) {
	failStopGolden(t, bankingSrc, bankingFailStop, true)
}

func TestFailStopGoldenCADFsyncError(t *testing.T) {
	failStopGolden(t, cadSrc, cadFailStop, false)
}

func TestFailStopGoldenCADENOSPC(t *testing.T) {
	failStopGolden(t, cadSrc, cadFailStop, true)
}

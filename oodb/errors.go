package oodb

import (
	"context"
	"errors"

	"repro/internal/lock"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Code classifies every error the database returns into the taxonomy
// the Is* predicates test piecewise. Codes travel losslessly over the
// wire protocol (internal/serv), so an error surfaced by the network
// client satisfies the same predicates as the embedded original. The
// numeric values are part of the wire format and must not be reordered.
type Code uint8

// The error taxonomy.
const (
	// CodeOK is the classification of a nil error.
	CodeOK Code = iota
	// CodeDeadlock: the transaction was chosen as a deadlock victim
	// (IsDeadlock). Update/UpdateAsync retry these automatically.
	CodeDeadlock
	// CodeTimeout: a lock wait exceeded the configured timeout
	// (IsTimeout). Retried like deadlocks.
	CodeTimeout
	// CodeReadOnly: a write was attempted on a database in degraded
	// read-only mode (IsReadOnly).
	CodeReadOnly
	// CodeDiskFull: the degradation was out-of-space specifically
	// (IsDiskFull; also satisfies IsReadOnly).
	CodeDiskFull
	// CodeSnapshotWrite: a write was attempted inside a View
	// transaction (IsSnapshotWrite).
	CodeSnapshotWrite
	// CodeCanceled: the caller's context was canceled or its deadline
	// exceeded before the operation completed (IsCanceled).
	CodeCanceled
	// CodeOther: an error outside the taxonomy (unknown class, bad
	// argument, interpreter fault, ...).
	CodeOther
)

// String names the code the way the wire protocol documentation does.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeDeadlock:
		return "deadlock"
	case CodeTimeout:
		return "timeout"
	case CodeReadOnly:
		return "readonly"
	case CodeDiskFull:
		return "diskfull"
	case CodeSnapshotWrite:
		return "snapshotwrite"
	case CodeCanceled:
		return "canceled"
	}
	return "other"
}

// Error is a coded error: the form every database error takes after a
// trip through the wire protocol. The Is* predicates and ErrorCode
// recognise it wherever it appears in a wrap chain, so client-side
// error handling is byte-for-byte the embedded error handling.
type Error struct {
	Code Code
	Msg  string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Msg == "" {
		return "oodb: " + e.Code.String()
	}
	return e.Msg
}

// hasCode reports whether err carries a coded error with code c.
func hasCode(err error, c Code) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == c
}

// ErrorCode classifies err under the taxonomy: the single switchable
// answer the Is* predicates give piecewise. A coded error (one that
// crossed the wire) reports its transported code; everything else is
// classified by the same sentinel tests the predicates use. Ambiguity
// resolves toward the most specific code: a disk-full failure is
// CodeDiskFull even though it also satisfies IsReadOnly.
func ErrorCode(err error) Code {
	if err == nil {
		return CodeOK
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	switch {
	case IsDeadlock(err):
		return CodeDeadlock
	case IsTimeout(err):
		return CodeTimeout
	case IsSnapshotWrite(err):
		return CodeSnapshotWrite
	case IsDiskFull(err):
		return CodeDiskFull
	case IsReadOnly(err):
		return CodeReadOnly
	case IsCanceled(err):
		return CodeCanceled
	}
	return CodeOther
}

// IsReadOnly reports whether err came from a write attempted (or a
// commit acknowledged-then-failed) on a database in degraded read-only
// mode. A disk-full degradation satisfies it too (the database is
// read-only either way); test IsDiskFull for the narrower cause.
func IsReadOnly(err error) bool {
	return errors.Is(err, txn.ErrReadOnly) || errors.Is(err, wal.ErrLogFailed) ||
		hasCode(err, CodeReadOnly) || hasCode(err, CodeDiskFull)
}

// IsDiskFull reports whether err traces back to the log running out of
// disk space.
func IsDiskFull(err error) bool {
	return errors.Is(err, wal.ErrDiskFull) || hasCode(err, CodeDiskFull)
}

// IsDeadlock reports whether err is a deadlock-victim abort. Update and
// UpdateAsync retry these automatically; Begin/Commit callers handle
// them by retrying the whole transaction.
func IsDeadlock(err error) bool {
	return lock.IsDeadlock(err) || hasCode(err, CodeDeadlock)
}

// IsTimeout reports whether err is a lock-wait timeout — contention the
// clock detected instead of the waits-for graph. Update and UpdateAsync
// retry these exactly like deadlocks.
func IsTimeout(err error) bool {
	return errors.Is(err, lock.ErrTimeout) || hasCode(err, CodeTimeout)
}

// IsSnapshotWrite reports whether err came from a write attempted
// inside a View transaction.
func IsSnapshotWrite(err error) bool {
	return errors.Is(err, txn.ErrSnapshotWrite) || hasCode(err, CodeSnapshotWrite)
}

// IsCanceled reports whether err came from the caller's context being
// canceled (or its deadline exceeded) at one of the ctx-aware entry
// points: before an attempt, during a lock wait, across the retry
// backoff, or while waiting for the commit's durability acknowledgment.
// In the last case the error also wraps txn.ErrUnackedCommit — the
// commit is applied and sequenced, only its confirmation was abandoned.
func IsCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, lock.ErrCanceled) || errors.Is(err, wal.ErrWaitCanceled) ||
		hasCode(err, CodeCanceled)
}

// IsUnackedCommit reports whether err is a cancellation that struck
// after the commit was sequenced: the transaction's effects are applied
// and will harden with their batch, but the durability confirmation was
// abandoned. Callers that must know for certain can follow up with
// Database.Sync.
func IsUnackedCommit(err error) bool {
	return errors.Is(err, txn.ErrUnackedCommit)
}

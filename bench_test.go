// Package repro's root benchmarks map one-to-one onto the paper's tables,
// figures and claims (see DESIGN.md §3 and EXPERIMENTS.md):
//
//	BenchmarkTable1Compat        — Table 1 (classical compatibility check)
//	BenchmarkModeCheck*          — §5.1 claim: method-mode check ≈ R/W check
//	BenchmarkVector*             — definitions 4–5 primitives
//	BenchmarkCompileFigure1      — Figures 1–2, Table 2, §4.3 pipeline
//	BenchmarkCompileTAV/*        — §4.3 linearity sweep
//	BenchmarkSend/*              — §3 locking overhead per top message
//	BenchmarkScenario52          — §5.2 scenario analysis
//	BenchmarkEscalation/*        — §3 System R escalation shape
//	BenchmarkPseudo/*            — §3 pseudo-conflict shape
//	BenchmarkThroughput/*        — §§1/7 parallelism claim
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/paperex"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

func compileFig1(b *testing.B) *core.Compiled {
	b.Helper()
	c, err := core.CompileSource(paperex.Figure1)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// Table 1: the classical compatibility relation.
func BenchmarkTable1Compat(b *testing.B) {
	acc := false
	for i := 0; i < b.N; i++ {
		acc = acc != core.Read.Compatible(core.Write)
	}
	_ = acc
}

// §5.1: a method-mode commutativity check is one table lookup…
func BenchmarkModeCheckMethodTable(b *testing.B) {
	c := compileFig1(b)
	tbl := c.Class("c2").Table
	i, j := tbl.ModeIndex("m2"), tbl.ModeIndex("m4")
	b.ResetTimer()
	acc := false
	for k := 0; k < b.N; k++ {
		acc = acc != tbl.CommutesIdx(i, j)
	}
	_ = acc
}

// …as cheap as a classical read/write compatibility check…
func BenchmarkModeCheckRW(b *testing.B) {
	acc := false
	for k := 0; k < b.N; k++ {
		acc = acc != lock.S.Compatible(lock.X)
	}
	_ = acc
}

// …while checking raw access vectors would cost a merge scan.
func BenchmarkVectorCommute(b *testing.B) {
	c := compileFig1(b)
	v1 := c.Class("c2").TAV["m1"]
	v2 := c.Class("c2").TAV["m2"]
	b.ResetTimer()
	acc := false
	for k := 0; k < b.N; k++ {
		acc = acc != v1.Commutes(v2)
	}
	_ = acc
}

// Definition 4: the join operator.
func BenchmarkVectorJoin(b *testing.B) {
	c := compileFig1(b)
	v1 := c.Class("c2").TAV["m1"]
	v2 := c.Class("c2").TAV["m4"]
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		_ = v1.Join(v2)
	}
}

// Figures 1–2, Table 2, §4.3: the whole pipeline on the paper's example.
func BenchmarkCompileFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.CompileSource(paperex.Figure1); err != nil {
			b.Fatal(err)
		}
	}
}

// §4.3 linearity: compile time per schema size (analysis only; the
// parse/build front end is excluded so the Tarjan pass dominates).
func BenchmarkCompileTAV(b *testing.B) {
	for _, classes := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("classes-%d", classes), func(b *testing.B) {
			p := workload.SchemaParams{
				Classes: classes, MaxParents: 2, FieldsPerClass: 4,
				MethodsPerClass: 6, SelfCallsPerM: 3,
				OverrideProb: 0.3, PrefixedProb: 0.5, AllowCycles: true, Seed: 42,
			}
			s, err := core.CompileSource(workload.GenSchema(p))
			if err != nil {
				b.Fatal(err)
			}
			methods := 0
			for _, cls := range s.Schema.Order {
				methods += len(cls.MethodList)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(s.Schema); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*methods), "ns/method")
		})
	}
}

// §3 locking overhead: one top-level m1 send (which self-sends m2 and
// m3) per strategy — the fine protocol pays two lock requests, the
// baselines one control per message plus escalations.
func BenchmarkSend(b *testing.B) {
	for _, s := range bench.AllScenarioStrategies() {
		b.Run(s.Name(), func(b *testing.B) {
			db := engine.Open(compileFig1(b), s)
			var oid storage.OID
			err := db.RunWithRetry(func(tx *txn.Txn) error {
				in, err := db.NewInstance(tx, "c2", storage.IntV(1), storage.BoolV(false))
				oid = in.OID
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := db.RunWithRetry(func(tx *txn.Txn) error {
					_, err := db.Send(tx, oid, "m1", storage.IntV(int64(i)))
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			st := db.Locks().Snapshot()
			b.ReportMetric(float64(st.Requests)/float64(st.Releases), "locks/txn")
		})
	}
}

// §5.2: the full scenario analysis (record four transactions under one
// strategy and compute the maximal concurrent sets).
func BenchmarkScenario52(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunScenario(engine.FineCC{}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// §3 System R shape: contended check-then-revise sessions.
func BenchmarkEscalation(b *testing.B) {
	for _, s := range []engine.Strategy{engine.RWCC{}, engine.RWAnnounceCC{}, engine.FineCC{}} {
		b.Run(s.Name(), func(b *testing.B) {
			deadlocks := int64(0)
			for i := 0; i < b.N; i++ {
				row, err := bench.RunEscalationWorkload(s, 4, 5, 200)
				if err != nil {
					b.Fatal(err)
				}
				deadlocks += row.Deadlocks
			}
			b.ReportMetric(float64(deadlocks)/float64(b.N), "deadlocks/run")
		})
	}
}

// §3 pseudo-conflicts: the m2/m4 mix on one instance.
func BenchmarkPseudo(b *testing.B) {
	for _, s := range []engine.Strategy{engine.FineCC{}, engine.RWCC{}} {
		b.Run(s.Name(), func(b *testing.B) {
			blocks := int64(0)
			for i := 0; i < b.N; i++ {
				row, err := bench.RunPseudoWorkload(s, 2, 20)
				if err != nil {
					b.Fatal(err)
				}
				blocks += row.Blocks
			}
			b.ReportMetric(float64(blocks)/float64(b.N), "blocks/run")
		})
	}
}

// §§1/7: committed-transaction throughput, on the profile where the
// fine modes pay off (hot instances, mostly-commuting methods) and on a
// random mixed workload.
func BenchmarkThroughput(b *testing.B) {
	for _, profile := range []bench.ThroughputProfile{bench.ProfileHotDisjoint, bench.ProfileRandom} {
		for _, s := range bench.AllScenarioStrategies() {
			b.Run(string(profile)+"/"+s.Name(), func(b *testing.B) {
				blocks := int64(0)
				for i := 0; i < b.N; i++ {
					row, err := bench.RunThroughputWorkload(s, profile, 4, 25)
					if err != nil {
						b.Fatal(err)
					}
					blocks += row.Blocks
				}
				b.ReportMetric(float64(blocks)/float64(b.N), "blocks/run")
			})
		}
	}
}

// Lock-manager hot path: uncontended acquire + release.
func BenchmarkLockAcquireRelease(b *testing.B) {
	m := lock.NewManager()
	res := lock.InstanceRes(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := lock.TxnID(i + 1)
		if err := m.Acquire(txn, res, lock.X); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(txn)
	}
}

// Interpreter hot path: arithmetic-heavy method execution.
func BenchmarkInterpreter(b *testing.B) {
	const src = `
class k is
    instance variables are
        n : integer
    method busy(p) is
        var i := 0
        while i < p do
            i := i + 1
            n := n + i
        end
        return n
    end
end`
	c, err := core.CompileSource(src)
	if err != nil {
		b.Fatal(err)
	}
	db := engine.Open(c, engine.FineCC{})
	var oid storage.OID
	err = db.RunWithRetry(func(tx *txn.Txn) error {
		in, err := db.NewInstance(tx, "k")
		oid = in.OID
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.RunWithRetry(func(tx *txn.Txn) error {
			_, err := db.Send(tx, oid, "busy", storage.IntV(100))
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

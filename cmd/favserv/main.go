// Command favserv serves an object database over favserv's wire
// protocol (see internal/serv): a TCP or unix-socket daemon whose
// clients batch commands into server-side transactions, pipelined so
// one group-commit fsync amortizes across connections.
//
// Usage:
//
//	favserv -sock /run/fav.sock -schema banking -dir /var/lib/fav
//	favserv -addr :6422 -schema app.fav -strategy fine \
//	        -commuting account:deposit:deposit -sync 2ms
//	favserv -sock /tmp/fav.sock -schema banking -smoke
//	                                    # start, self-check, exit 0
//
// The flags map 1:1 onto oodb.Options; -schema takes a schema source
// file, or one of the builtin benchmark schemas ("banking", "cad").
// On SIGTERM/SIGINT the server drains gracefully: it stops accepting,
// answers everything already read from every connection, then closes
// the database.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/serv"
	"repro/oodb"
	"repro/oodb/client"
)

// commutingFlags collects repeated -commuting class:m1:m2 declarations.
type commutingFlags [][3]string

func (c *commutingFlags) String() string { return fmt.Sprint([][3]string(*c)) }

func (c *commutingFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want class:method:method, got %q", s)
	}
	*c = append(*c, [3]string{parts[0], parts[1], parts[2]})
	return nil
}

func main() {
	var commuting commutingFlags
	var (
		addr     = flag.String("addr", "", "TCP listen address (host:port)")
		sock     = flag.String("sock", "", "unix socket path (removed and re-bound if stale)")
		schemaF  = flag.String("schema", "", "schema source file, or builtin: banking, cad")
		strategy = flag.String("strategy", "fine", "concurrency-control strategy: fine, rw, rw-implicit, rw-announce, field, relational")
		dir      = flag.String("dir", "", "data directory; empty serves a volatile database")
		groupWin = flag.Duration("group-commit", 0, "group-commit window (how long a batch waits for company)")
		ckptEach = flag.Int64("checkpoint-bytes", 0, "auto-checkpoint when the log exceeds this size (0: manual only)")
		syncMode = flag.String("sync", "always", "durability policy: always, never, or an fsync interval like 2ms")
		slowTxn  = flag.Duration("slow-txn", 0, "arm the transaction flight recorder at this threshold")
		noMetric = flag.Bool("no-metrics", false, "strip the observability registry")
		debug    = flag.Bool("debug", false, "log per-connection protocol errors")
		smoke    = flag.Bool("smoke", false, "start, self-check over a loopback client, and exit")
	)
	flag.Var(&commuting, "commuting", "ad hoc commutativity declaration class:method:method (repeatable)")
	flag.Parse()
	if err := serve(*addr, *sock, *schemaF, *strategy, *dir, *groupWin, *ckptEach,
		*syncMode, *slowTxn, *noMetric, *debug, *smoke, commuting); err != nil {
		fmt.Fprintln(os.Stderr, "favserv:", err)
		os.Exit(1)
	}
}

func serve(addr, sock, schemaF, strategy, dir string,
	groupWin time.Duration, ckptEach int64, syncMode string,
	slowTxn time.Duration, noMetric, debug, smoke bool, commuting commutingFlags) error {
	if (addr == "") == (sock == "") {
		return fmt.Errorf("exactly one of -addr or -sock is required")
	}
	if schemaF == "" {
		return fmt.Errorf("-schema is required")
	}

	// Schema: a builtin name or a source file.
	source := ""
	switch schemaF {
	case "banking", "cad":
		src, comm, err := bench.EngineSchemaSource(bench.EngineSchemaName(schemaF))
		if err != nil {
			return err
		}
		source = src
		commuting = append(comm, commuting...)
	default:
		b, err := os.ReadFile(schemaF)
		if err != nil {
			return err
		}
		source = string(b)
	}
	var copts []oodb.Option
	for _, c := range commuting {
		copts = append(copts, oodb.WithCommuting(c[0], c[1], c[2]))
	}
	schema, err := oodb.Compile(source, copts...)
	if err != nil {
		return err
	}

	// Open options, straight from the flags.
	o := oodb.DefaultOptions()
	o.Dir = dir
	o.GroupCommitWindow = groupWin
	o.CheckpointEveryBytes = ckptEach
	o.NoMetrics = noMetric
	o.SlowTxnThreshold = slowTxn
	switch syncMode {
	case "always":
	case "never":
		o.SyncNever = true
	default:
		d, err := time.ParseDuration(syncMode)
		if err != nil || d <= 0 {
			return fmt.Errorf("-sync wants always, never or a positive duration, got %q", syncMode)
		}
		o.SyncEvery = d
	}
	db, err := oodb.OpenWith(schema, oodb.Strategy(strategy), o)
	if err != nil {
		return err
	}

	cfg := serv.Config{}
	if debug {
		cfg.Logf = log.Printf
	}
	network, laddr := "tcp", addr
	if sock != "" {
		network, laddr = "unix", sock
		// A stale socket file from an unclean shutdown blocks the bind;
		// remove it if nothing is listening.
		if _, err := os.Stat(sock); err == nil {
			if c, err := client.Dial(sock); err == nil {
				c.Close()
				db.Close()
				return fmt.Errorf("socket %s already has a live server", sock)
			}
			os.Remove(sock)
		}
	}
	srv, err := serv.Listen(db, network, laddr, cfg)
	if err != nil {
		db.Close()
		return err
	}
	log.Printf("favserv: serving %s on %s (%s, strategy %s, dir %q, sync %s)",
		schemaF, srv.Addr(), network, strategy, dir, syncMode)

	if smoke {
		err := smokeCheck(srv.Addr().String(), network)
		cerr := srv.Close()
		dcerr := db.Close()
		if err == nil {
			err = cerr
		}
		if err == nil {
			err = dcerr
		}
		if err == nil {
			log.Printf("favserv: smoke check ok")
		}
		return err
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	s := <-sigs
	log.Printf("favserv: %s, draining", s)
	if err := srv.Close(); err != nil {
		db.Close()
		return err
	}
	if err := db.Close(); err != nil {
		return err
	}
	st := srv.Stats()
	log.Printf("favserv: drained clean: %d sessions, %d requests, %d txns, %d errors",
		st.SessionsTotal, st.Requests, st.Txns, st.Errors)
	return nil
}

// smokeCheck proves the wire works end to end: dial, ping, and where
// the schema allows it, one transaction.
func smokeCheck(addr, network string) error {
	if network == "unix" {
		addr = "unix:" + addr
	}
	c, err := client.Dial(addr)
	if err != nil {
		return fmt.Errorf("smoke dial: %w", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		return fmt.Errorf("smoke ping: %w", err)
	}
	if _, err := c.ServerStats(ctx); err != nil {
		return fmt.Errorf("smoke stats: %w", err)
	}
	return nil
}

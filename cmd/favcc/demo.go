package main

import (
	"fmt"
	"io"

	"repro/oodb"
)

// demoSchema is the banking hierarchy of examples/banking, compact
// enough for the durability demo.
const demoSchema = `
class account is
    instance variables are
        number  : integer
        owner   : string
        balance : integer
    method deposit(n) is
        balance := balance + n
    end
    method getbalance is
        return balance
    end
end
`

// runDurableDemo exercises the public durable API end to end: recover
// whatever a previous invocation left under dir, deposit into the
// persistent account, report, close. Run it repeatedly and the balance
// keeps climbing across processes.
func runDurableDemo(w io.Writer, dir string) error {
	schema, err := oodb.Compile(demoSchema)
	if err != nil {
		return err
	}
	db, err := oodb.Open(schema, oodb.Fine, oodb.Durable(dir))
	if err != nil {
		return err
	}
	defer db.Close()

	rec := db.Recovery()
	switch {
	case rec.Checkpoint || rec.RecordsApplied > 0:
		fmt.Fprintf(w, "recovered: checkpoint=%v, %d commit records replayed", rec.Checkpoint, rec.RecordsApplied)
		if rec.TornTailBytes > 0 {
			fmt.Fprintf(w, " (%d torn bytes truncated)", rec.TornTailBytes)
		}
		fmt.Fprintln(w)
	default:
		fmt.Fprintf(w, "fresh database in %s\n", dir)
	}

	// The first invocation creates account #1; later ones find it by its
	// stable OID (the allocator restarts above everything recovered).
	const acct = oodb.OID(1)
	err = db.Update(func(tx *oodb.Txn) error {
		if _, err := tx.Send(acct, "getbalance"); err != nil {
			created, err := tx.New("account", int64(1), "demo", int64(0))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "created account #%d\n", created)
		}
		return nil
	})
	if err != nil {
		return err
	}
	var balance any
	err = db.Update(func(tx *oodb.Txn) error {
		if _, err := tx.Send(acct, "deposit", int64(10)); err != nil {
			return err
		}
		balance, err = tx.Send(acct, "getbalance")
		return err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "deposited 10; balance is now %v (fsynced to %s)\n", balance, dir)
	return nil
}

package main

import (
	"fmt"
	"io"
	"net"
	"net/http"

	"repro/oodb"
)

// demoSchema is the banking hierarchy of examples/banking, compact
// enough for the durability demo.
const demoSchema = `
class account is
    instance variables are
        number  : integer
        owner   : string
        balance : integer
    method deposit(n) is
        balance := balance + n
    end
    method getbalance is
        return balance
    end
end
`

// runDurableDemo exercises the public durable API end to end: recover
// whatever a previous invocation left under dir, deposit into the
// persistent account, report, close. Run it repeatedly and the balance
// keeps climbing across processes. With debugAddr non-empty the
// database's debug handler (metrics + pprof) serves on that address
// throughout, and the process stays up after the demo so the endpoints
// can be scraped.
func runDurableDemo(w io.Writer, dir, debugAddr string) error {
	schema, err := oodb.Compile(demoSchema)
	if err != nil {
		return err
	}
	db, err := oodb.Open(schema, oodb.Fine, oodb.Durable(dir))
	if err != nil {
		return err
	}
	defer db.Close()

	var debugLn net.Listener
	if debugAddr != "" {
		debugLn, err = net.Listen("tcp", debugAddr)
		if err != nil {
			return err
		}
		go http.Serve(debugLn, db.DebugHandler()) //nolint:errcheck // dies with the process
		fmt.Fprintf(w, "debug handler on http://%s/ (metrics, vars, slowtxns, debug/pprof)\n",
			debugLn.Addr())
	}

	rec := db.Recovery()
	switch {
	case rec.Checkpoint || rec.RecordsApplied > 0:
		fmt.Fprintf(w, "recovered: checkpoint=%v, %d commit records replayed", rec.Checkpoint, rec.RecordsApplied)
		if rec.TornTailBytes > 0 {
			fmt.Fprintf(w, " (%d torn bytes truncated)", rec.TornTailBytes)
		}
		fmt.Fprintln(w)
	default:
		fmt.Fprintf(w, "fresh database in %s\n", dir)
	}

	// The first invocation creates account #1; later ones find it by its
	// stable OID (the allocator restarts above everything recovered).
	const acct = oodb.OID(1)
	err = db.Update(func(tx *oodb.Txn) error {
		if _, err := tx.Send(acct, "getbalance"); err != nil {
			created, err := tx.New("account", int64(1), "demo", int64(0))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "created account #%d\n", created)
		}
		return nil
	})
	if err != nil {
		return err
	}
	var balance any
	err = db.Update(func(tx *oodb.Txn) error {
		if _, err := tx.Send(acct, "deposit", int64(10)); err != nil {
			return err
		}
		balance, err = tx.Send(acct, "getbalance")
		return err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "deposited 10; balance is now %v (fsynced to %s)\n", balance, dir)
	if debugLn != nil {
		fmt.Fprintln(w, "demo done; debug handler still serving — interrupt to exit")
		select {}
	}
	return nil
}

// Command favcc is the fine-access-vector concurrency-control compiler:
// it parses an mdl schema and reports everything the paper's pipeline
// derives from it — direct access vectors, self-call sets, late-binding
// resolution graphs, transitive access vectors and per-class
// commutativity tables.
//
// Usage:
//
//	favcc [-class NAME] [-dot] [-davs] <schema.mdl>
//	favcc -example            # run on the paper's Figure 1
//	favcc -durable -dir DIR   # durability demo: persist and recover
//	favcc -durable -dir DIR -debug 127.0.0.1:6060
//	                          # …and serve metrics + pprof over HTTP
//
// With -dot the late-binding resolution graphs are printed in Graphviz
// syntax (the paper's Figure 2 for class c2 of the example).
//
// With -durable, favcc runs the built-in banking demo against the
// public oodb API with a write-ahead log rooted at -dir: every
// invocation recovers the previous state, deposits into a persistent
// account and prints the balance — run it twice and watch the balance
// survive the process. Adding -debug ADDR serves the database's debug
// handler (Prometheus /metrics, expvar-style /vars, /slowtxns,
// /debug/pprof) on ADDR while the demo runs, then keeps serving until
// interrupted so the endpoints can be inspected.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/paperex"
	"repro/internal/schema"
)

// config carries the parsed command line.
type config struct {
	className string
	dot       bool
	davs      bool
	example   bool
	durable   bool
	dir       string
	debug     string
	args      []string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.className, "class", "", "restrict the report to one class")
	flag.BoolVar(&cfg.dot, "dot", false, "print late-binding resolution graphs in Graphviz syntax")
	flag.BoolVar(&cfg.davs, "davs", false, "print per-definition DAV/DSC/PSC extraction too")
	flag.BoolVar(&cfg.example, "example", false, "compile the paper's Figure 1 instead of a file")
	flag.BoolVar(&cfg.durable, "durable", false, "run the persistent banking demo (with -dir)")
	flag.StringVar(&cfg.dir, "dir", "", "write-ahead-log directory for -durable")
	flag.StringVar(&cfg.debug, "debug", "", "serve the metrics/pprof debug handler on this address during -durable (blocks after the demo)")
	flag.Parse()
	cfg.args = flag.Args()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "favcc:", err)
		os.Exit(1)
	}
}

// run executes the tool against w; separated from main for testing.
func run(w io.Writer, cfg config) error {
	if cfg.durable {
		if cfg.dir == "" {
			return fmt.Errorf("-durable needs -dir DIR (the log directory)")
		}
		return runDurableDemo(w, cfg.dir, cfg.debug)
	}
	src, err := loadSource(cfg.example, cfg.args)
	if err != nil {
		return err
	}
	compiled, err := core.CompileSource(src)
	if err != nil {
		return err
	}
	if cfg.className != "" && compiled.Schema.Class(cfg.className) == nil {
		return fmt.Errorf("no class %q in schema", cfg.className)
	}
	for _, cls := range compiled.Schema.Order {
		if cfg.className != "" && cls.Name != cfg.className {
			continue
		}
		report(w, compiled, cls, cfg.dot, cfg.davs)
	}
	return nil
}

func loadSource(example bool, args []string) (string, error) {
	if example {
		return paperex.Figure1, nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("usage: favcc [-class NAME] [-dot] [-davs] <schema.mdl> (or -example)")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func report(w io.Writer, compiled *core.Compiled, cls *schema.Class, dot, davs bool) {
	cc := compiled.Class(cls.Name)
	fmt.Fprintf(w, "class %s", cls.Name)
	if len(cls.Parents) > 0 {
		fmt.Fprint(w, " inherits ")
		for i, p := range cls.Parents {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprint(w, p.Name)
		}
	}
	fmt.Fprintln(w)

	fmt.Fprint(w, "  FIELDS: ")
	for i, f := range cls.Fields {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%s (%s)", f.Name, f.Owner.Name)
	}
	fmt.Fprintln(w)

	if davs {
		for _, name := range cls.MethodList {
			m := cls.Resolve(name)
			info := compiled.Infos[m]
			fmt.Fprintf(w, "  %s defined in %s\n", name, m.Definer.Name)
			fmt.Fprintf(w, "    DAV = %s\n", info.DAV.FormatFull(compiled.Schema, m.Definer.Fields))
			fmt.Fprintf(w, "    DSC = %v\n", info.DSC)
			fmt.Fprintf(w, "    PSC = %v\n", info.PSC)
		}
	}

	fmt.Fprintln(w, "  transitive access vectors:")
	for _, name := range cls.MethodList {
		fmt.Fprintf(w, "    TAV(%s,%s) = %s\n", cls.Name, name,
			cc.TAV[name].FormatFull(compiled.Schema, cls.Fields))
	}

	fmt.Fprintln(w, "  commutativity relation:")
	fmt.Fprint(w, indent(cc.Table.String(), "    "))

	if dot {
		fmt.Fprintln(w, "  late-binding resolution graph:")
		fmt.Fprint(w, indent(cc.Graph.Dot(), "    "))
	}
	fmt.Fprintln(w)
}

func indent(s, prefix string) string {
	out := ""
	line := ""
	for _, r := range s {
		if r == '\n' {
			out += prefix + line + "\n"
			line = ""
			continue
		}
		line += string(r)
	}
	if line != "" {
		out += prefix + line + "\n"
	}
	return out
}

package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunExample(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, config{example: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"class c1",
		"class c2 inherits c1",
		"TAV(c2,m1) = (Write f1, Read f2, Read f3, Write f4, Read f5, Null f6)",
		"commutativity relation:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunClassFilterAndFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, config{example: true, className: "c2", dot: true, davs: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "class c3") {
		t.Error("filter must hide other classes")
	}
	for _, want := range []string{
		"DSC = [m2 m3]",
		"PSC = [(c1,m2)]",
		"digraph lbr_c2",
		"c2_m2 -> c1_m2;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownClass(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, config{example: true, className: "zz"}); err == nil {
		t.Fatal("unknown class must fail")
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.mdl")
	src := "class k is\n    instance variables are\n        n : integer\n    method bump is\n        n := n + 1\n    end\nend\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, config{args: []string{path}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TAV(k,bump) = (Write n)") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, config{}); err == nil {
		t.Error("missing file must fail with usage")
	}
	if err := run(&buf, config{args: []string{"/nonexistent/schema.mdl"}}); err == nil {
		t.Error("unreadable file must fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.mdl")
	if err := os.WriteFile(bad, []byte("class k is method m is x := 1 end end"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, config{args: []string{bad}}); err == nil {
		t.Error("compile error must propagate")
	}
}

// The -durable -dir demo persists across invocations: the second run
// recovers the first run's commits and the balance keeps climbing.
func TestRunDurableDemoPersistsAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	var first bytes.Buffer
	if err := run(&first, config{durable: true, dir: dir}); err != nil {
		t.Fatal(err)
	}
	out := first.String()
	if !strings.Contains(out, "created account #1") || !strings.Contains(out, "balance is now 10") {
		t.Errorf("first run output:\n%s", out)
	}
	var second bytes.Buffer
	if err := run(&second, config{durable: true, dir: dir}); err != nil {
		t.Fatal(err)
	}
	out = second.String()
	if !strings.Contains(out, "recovered:") || !strings.Contains(out, "balance is now 20") {
		t.Errorf("second run output:\n%s", out)
	}
	if strings.Contains(out, "created account") {
		t.Error("second run must find the recovered account, not create one")
	}
	if err := run(&second, config{durable: true}); err == nil {
		t.Error("-durable without -dir must fail")
	}
}

// safeBuf is a mutex-guarded buffer: the -debug demo keeps running in
// a background goroutine while the test reads its output.
type safeBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var debugAddrRE = regexp.MustCompile(`debug handler on http://([^/\s]+)/`)

func TestRunDurableDemoDebugHandler(t *testing.T) {
	dir := t.TempDir()
	var out safeBuf
	// The -debug demo intentionally never returns (it serves until
	// interrupted); run it in a goroutine and scrape it live.
	go func() {
		if err := run(&out, config{durable: true, dir: dir, debug: "127.0.0.1:0"}); err != nil {
			t.Errorf("debug demo: %v", err)
		}
	}()
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("debug address never printed; output:\n%s", out.String())
		}
		if m := debugAddrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{"favcc_send_latency_seconds", "favcc_wal_fsyncs_total", "favcc_txns_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if resp, err := http.Get("http://" + addr + "/slowtxns"); err != nil {
		t.Error(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/slowtxns status %d", resp.StatusCode)
		}
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all", true); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "table2", "figure2", "scenario52", "conservative"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunOne(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "matches Table 2 cell for cell") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nosuch", false); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

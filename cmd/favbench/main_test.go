package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all", true); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "table2", "figure2", "scenario52", "conservative"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunOne(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "matches Table 2 cell for cell") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nosuch", false); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

const benchSample = `goos: linux
BenchmarkHotSend-4 	 1000000	 517 ns/op	 0 B/op	 0 allocs/op
BenchmarkDurableCommit/volatile-4 	 1000000	 882 ns/op	 0 B/op	 0 allocs/op
PASS
`

func TestParseAndGateRoundtrip(t *testing.T) {
	dir := t.TempDir()
	var js bytes.Buffer
	if err := parseBench(strings.NewReader(benchSample), &js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"BenchmarkHotSend"`) {
		t.Fatalf("parse output missing benchmark: %s", js.String())
	}
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	if err := os.WriteFile(basePath, js.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(curPath, js.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var report bytes.Buffer
	if err := gateBench(&report, basePath, curPath); err != nil {
		t.Fatalf("identical trajectories failed the gate: %v\n%s", err, report.String())
	}

	// A regression on the 0-alloc hot path fails the gate.
	regressed := strings.Replace(benchSample,
		"BenchmarkHotSend-4 	 1000000	 517 ns/op	 0 B/op	 0 allocs/op",
		"BenchmarkHotSend-4 	 1000000	 617 ns/op	 128 B/op	 5 allocs/op", 1)
	var js2 bytes.Buffer
	if err := parseBench(strings.NewReader(regressed), &js2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(curPath, js2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	report.Reset()
	if err := gateBench(&report, basePath, curPath); err == nil {
		t.Fatalf("gate passed a 0→5 allocs/op regression:\n%s", report.String())
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := parseBench(strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("parse accepted input with no benchmark lines")
	}
}

func TestResolveBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR5.json", "BENCH_PR7.json", "BENCH_PR12.json", "BENCH_CI.json", "notes.md"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resolveBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_PR12.json" {
		t.Errorf("resolved %s, want the highest-numbered BENCH_PR12.json", got)
	}

	// A file path passes through untouched.
	direct := filepath.Join(dir, "BENCH_PR5.json")
	if got, err := resolveBaseline(direct); err != nil || got != direct {
		t.Errorf("resolveBaseline(%s) = %s, %v", direct, got, err)
	}

	// A directory with no baselines is an error, not a silent pass.
	empty := t.TempDir()
	if _, err := resolveBaseline(empty); err == nil {
		t.Error("empty directory must fail to resolve")
	}
}

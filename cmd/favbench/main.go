// Command favbench regenerates the paper's tables, figures and
// quantified claims. Each experiment prints what the paper states and
// the values this reproduction measures.
//
// Usage:
//
//	favbench -list            # list experiment IDs
//	favbench -run all         # run everything (default)
//	favbench -run scenario52  # run one experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		runID = flag.String("run", "all", "experiment ID to run, or 'all'")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if err := run(os.Stdout, *runID, *list); err != nil {
		fmt.Fprintln(os.Stderr, "favbench:", err)
		os.Exit(1)
	}
}

// run executes the tool against w; separated from main for testing.
func run(w io.Writer, runID string, list bool) error {
	if list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(w, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if runID == "all" {
		return bench.RunAll(w)
	}
	return bench.RunByID(w, runID)
}

// Command favbench regenerates the paper's tables, figures and
// quantified claims, and maintains the repository's benchmark
// trajectory. Each experiment prints what the paper states and the
// values this reproduction measures.
//
// Usage:
//
//	favbench -list                      # list experiment IDs
//	favbench -run all                   # run everything (default)
//	favbench -run scenario52            # run one experiment
//	favbench -run snapshotreads -duration 2s -warmup 500ms
//	                                    # duration-based scenario runs
//	favbench -run enginescenarios -metrics metrics.prom
//	                                    # dump each scenario's final
//	                                    # registry snapshot (Prometheus
//	                                    # text) next to the results
//
//	go test -bench ... | favbench -parse > BENCH.json
//	favbench -gate BENCH_PR5.json -in BENCH.json
//	favbench -gate . -in BENCH.json     # newest committed BENCH_PR<n>.json
//
// -parse turns `go test -bench` output into the machine-readable
// trajectory JSON CI uploads; -gate compares a fresh trajectory against
// the committed baseline and exits non-zero when allocs/op regressed
// anywhere, or when ns/op regressed on the curated hot-path set. When
// -gate names a directory, the baseline is the highest-numbered
// BENCH_PR<n>.json inside it — CI stays pinned to "newest committed"
// without editing the workflow every PR.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"repro/internal/bench"
)

func main() {
	var (
		runID    = flag.String("run", "all", "experiment ID to run, or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		parse    = flag.Bool("parse", false, "parse `go test -bench` output from stdin into trajectory JSON on stdout")
		gate     = flag.String("gate", "", "baseline trajectory JSON: gate the -in trajectory's allocs/op against it")
		in       = flag.String("in", "", "current trajectory JSON for -gate (default stdin)")
		duration = flag.Duration("duration", 0, "run each scenario experiment for this wall-clock duration instead of a fixed op budget")
		warmup   = flag.Duration("warmup", 0, "uncounted warmup before each duration-based scenario run")
		metrics  = flag.String("metrics", "", "append each engine scenario's final metrics-registry snapshot (Prometheus text) to this file")
		addr     = flag.String("addr", "", "favserv address (unix socket path or host:port): wire experiments drive this server instead of an in-process one")
	)
	flag.Parse()
	bench.SetDurations(*duration, *warmup)
	bench.SetWireAddr(*addr)
	if *metrics != "" {
		mf, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "favbench:", err)
			os.Exit(1)
		}
		defer mf.Close()
		bench.SetMetricsSink(mf)
	}

	var err error
	switch {
	case *parse:
		err = parseBench(os.Stdin, os.Stdout)
	case *gate != "":
		err = gateBench(os.Stdout, *gate, *in)
	default:
		err = run(os.Stdout, *runID, *list)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "favbench:", err)
		os.Exit(1)
	}
}

// run executes the experiment tool against w; separated from main for
// testing.
func run(w io.Writer, runID string, list bool) error {
	if list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(w, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if runID == "all" {
		return bench.RunAll(w)
	}
	return bench.RunByID(w, runID)
}

// parseBench converts raw benchmark output into trajectory JSON.
func parseBench(r io.Reader, w io.Writer) error {
	tr, err := bench.ParseGoBench(r)
	if err != nil {
		return err
	}
	if len(tr.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	return tr.WriteJSON(w)
}

var benchPRRE = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// resolveBaseline maps a -gate argument to a baseline file: a file path
// is used as is; a directory resolves to its highest-numbered
// BENCH_PR<n>.json.
func resolveBaseline(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !fi.IsDir() {
		return path, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchPRRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > bestN {
			best, bestN = e.Name(), n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PR<n>.json baseline in %s", path)
	}
	return filepath.Join(path, best), nil
}

// gateBench compares the current trajectory (inPath, or stdin when
// empty) against the committed baseline.
func gateBench(w io.Writer, basePath, inPath string) error {
	basePath, err := resolveBaseline(basePath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline: %s\n", basePath)
	bf, err := os.Open(basePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := bench.ReadTrajectory(bf)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", basePath, err)
	}
	var cr io.Reader = os.Stdin
	if inPath != "" {
		cf, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer cf.Close()
		cr = cf
	}
	cur, err := bench.ReadTrajectory(cr)
	if err != nil {
		return fmt.Errorf("current trajectory: %w", err)
	}
	return bench.Gate(w, base, cur)
}
